"""Unit tests for the sampling statistics of Fig. 6."""

import pytest

from repro.stats import achievable, proportion_interval, sample_size, z_value


class TestZValue:
    def test_95_percent(self):
        assert abs(z_value(0.95) - 1.9600) < 1e-3

    def test_90_percent(self):
        assert abs(z_value(0.90) - 1.6449) < 1e-3

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            z_value(1.0)
        with pytest.raises(ValueError):
            z_value(0.0)


class TestSampleSize:
    def test_paper_settings_unbounded(self):
        # c = 95%, w = 0.05 -> n0 = 1.96^2 * 0.25 / 0.0025 ~= 385
        assert sample_size(0.95, 0.05) == 385

    def test_fallback_settings(self):
        # c' = 90%, w' = 0.15 -> ~31 points
        assert sample_size(0.90, 0.15) == 31

    def test_finite_population_correction_reduces_n(self):
        unbounded = sample_size(0.95, 0.05)
        corrected = sample_size(0.95, 0.05, population=1000)
        assert corrected < unbounded
        assert corrected <= 1000

    def test_tiny_population_capped(self):
        assert sample_size(0.95, 0.05, population=10) <= 10

    def test_zero_population(self):
        assert sample_size(0.95, 0.05, population=0) == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            sample_size(0.95, 0.0)


class TestAchievable:
    def test_large_population_achievable(self):
        assert achievable(0.95, 0.05, 100_000)

    def test_small_population_not_achievable(self):
        assert not achievable(0.95, 0.05, 50)

    def test_fallback_reaches_smaller_spaces(self):
        # Some sizes achievable at (90%, 0.15) but not (95%, 0.05).
        size = 200
        assert not achievable(0.95, 0.05, size)
        assert achievable(0.90, 0.15, size)


class TestProportionInterval:
    def test_contains_point_estimate(self):
        lo, hi = proportion_interval(30, 100, 0.95)
        assert lo <= 0.3 <= hi

    def test_clamped_to_unit_interval(self):
        lo, hi = proportion_interval(0, 100, 0.95)
        assert lo == 0.0
        lo, hi = proportion_interval(100, 100, 0.95)
        assert hi == 1.0

    def test_empty_sample(self):
        assert proportion_interval(0, 0, 0.95) == (0.0, 0.0)

    def test_narrower_with_more_samples(self):
        lo1, hi1 = proportion_interval(30, 100, 0.95)
        lo2, hi2 = proportion_interval(300, 1000, 0.95)
        assert (hi2 - lo2) < (hi1 - lo1)
