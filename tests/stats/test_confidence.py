"""Unit tests for the sampling statistics of Fig. 6."""

import pytest

from repro.stats import (
    DEFAULT_FALLBACK,
    achievable,
    proportion_interval,
    sample_size,
    wilson_interval,
    z_value,
)


class TestZValue:
    def test_95_percent(self):
        assert abs(z_value(0.95) - 1.9600) < 1e-3

    def test_90_percent(self):
        assert abs(z_value(0.90) - 1.6449) < 1e-3

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            z_value(1.0)
        with pytest.raises(ValueError):
            z_value(0.0)


class TestSampleSize:
    def test_paper_settings_unbounded(self):
        # c = 95%, w = 0.05 -> n0 = 1.96^2 * 0.25 / 0.0025 ~= 385
        assert sample_size(0.95, 0.05) == 385

    def test_fallback_settings(self):
        # c' = 90%, w' = 0.15 -> ~31 points
        assert sample_size(0.90, 0.15) == 31

    def test_finite_population_correction_reduces_n(self):
        unbounded = sample_size(0.95, 0.05)
        corrected = sample_size(0.95, 0.05, population=1000)
        assert corrected < unbounded
        assert corrected <= 1000

    def test_tiny_population_capped(self):
        assert sample_size(0.95, 0.05, population=10) <= 10

    def test_zero_population(self):
        assert sample_size(0.95, 0.05, population=0) == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            sample_size(0.95, 0.0)


class TestAchievable:
    def test_large_population_achievable(self):
        assert achievable(0.95, 0.05, 100_000)

    def test_small_population_not_achievable(self):
        assert not achievable(0.95, 0.05, 50)

    def test_fallback_reaches_smaller_spaces(self):
        # Some sizes achievable at (90%, 0.15) but not (95%, 0.05).
        size = 200
        assert not achievable(0.95, 0.05, size)
        assert achievable(0.90, 0.15, size)


class TestEdgeCases:
    def test_volume_smaller_than_fallback_sample_size(self):
        """Fig. 6's last resort: an RIS below even the fallback n₀ is a
        census — not achievable at either accuracy, sample capped at V."""
        fallback_n0 = sample_size(*DEFAULT_FALLBACK)
        for volume in range(1, fallback_n0 + 1):
            assert not achievable(*DEFAULT_FALLBACK, volume)
            assert sample_size(*DEFAULT_FALLBACK, population=volume) <= volume
        assert achievable(*DEFAULT_FALLBACK, fallback_n0 + 1)

    def test_width_one_or_more_rejected(self):
        for width in (1.0, 1.5, 2.0):
            with pytest.raises(ValueError):
                sample_size(0.95, width)

    def test_width_just_below_one_needs_tiny_sample(self):
        assert sample_size(0.95, 0.999) == 1

    def test_confidence_approaching_one_diverges(self):
        """n₀ grows without bound as c → 1 (z diverges), monotonically."""
        sizes = [sample_size(c, 0.05) for c in (0.9, 0.99, 0.999, 0.999999)]
        assert sizes == sorted(sizes)
        assert len(set(sizes)) == len(sizes)  # strictly increasing
        assert sizes[-1] > 8 * sizes[0]

    def test_confidence_exactly_one_rejected(self):
        with pytest.raises(ValueError):
            sample_size(1.0, 0.05)

    def test_achievable_monotone_in_population(self):
        threshold = sample_size(0.95, 0.05)
        assert not achievable(0.95, 0.05, threshold)
        assert achievable(0.95, 0.05, threshold + 1)

    def test_population_one_is_a_census(self):
        assert sample_size(0.95, 0.05, population=1) == 1


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(30, 100, 0.95)
        assert lo < 0.3 < hi

    def test_zero_successes_has_nondegenerate_upper_bound(self):
        """The Wald interval collapses to a point at p̂ = 0; Wilson must
        keep an upper bound ≈ z²/(n+z²) so containment checks stay honest."""
        lo, hi = wilson_interval(0, 100, 0.95)
        assert lo == pytest.approx(0.0, abs=1e-12)
        assert 0.01 < hi < 0.1

    def test_all_successes_has_nondegenerate_lower_bound(self):
        lo, hi = wilson_interval(100, 100, 0.95)
        assert hi == 1.0
        assert 0.9 < lo < 0.99

    def test_empty_sample(self):
        assert wilson_interval(0, 0, 0.95) == (0.0, 0.0)

    def test_narrower_with_more_samples(self):
        lo1, hi1 = wilson_interval(30, 100, 0.95)
        lo2, hi2 = wilson_interval(300, 1000, 0.95)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_tighter_than_wald_never_escapes_unit_interval(self):
        for successes, n in [(0, 10), (1, 10), (9, 10), (10, 10)]:
            lo, hi = wilson_interval(successes, n, 0.99)
            assert 0.0 <= lo <= hi <= 1.0


class TestProportionInterval:
    def test_contains_point_estimate(self):
        lo, hi = proportion_interval(30, 100, 0.95)
        assert lo <= 0.3 <= hi

    def test_clamped_to_unit_interval(self):
        lo, hi = proportion_interval(0, 100, 0.95)
        assert lo == 0.0
        lo, hi = proportion_interval(100, 100, 0.95)
        assert hi == 1.0

    def test_empty_sample(self):
        assert proportion_interval(0, 0, 0.95) == (0.0, 0.0)

    def test_narrower_with_more_samples(self):
        lo1, hi1 = proportion_interval(30, 100, 0.95)
        lo2, hi2 = proportion_interval(300, 1000, 0.95)
        assert (hi2 - lo2) < (hi1 - lo1)
