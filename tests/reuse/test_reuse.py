"""Reuse analysis tests against the paper's worked examples (Section 3.4/3.5)."""

import pytest

from repro.normalize import normalize
from repro.reuse import (
    ReuseOptions,
    SPATIAL,
    TEMPORAL,
    build_reuse_table,
    linear_part,
    uniformly_generated_sets,
)

from tests.fixtures import figure1_program

N = 10
LINE_BYTES = 32  # Ls = 4 REAL*8 elements, as in the paper's examples


@pytest.fixture(scope="module")
def setup():
    prog, a, b = figure1_program(N)
    nprog = normalize(prog.main)
    table = build_reuse_table(nprog, LINE_BYTES)
    return nprog, table


def ref_named(nprog, stmt, array, write=None):
    for r in nprog.refs:
        if r.leaf.stmt_label == stmt and r.array.name == array:
            if write is None or r.is_write == write:
                return r
    raise AssertionError(f"no ref {array} in {stmt}")


class TestUniformlyGeneratedSets:
    def test_paper_ugs_partition(self, setup):
        """Section 3.4: {A(I1-1), A(I1), A(I1+1)}, {A(I2-1)}, {B(I2-1,I1), B(I2,I1)}."""
        nprog, _ = setup
        groups = uniformly_generated_sets(nprog)
        summaries = sorted(
            tuple(sorted(r.name() for r in g)) for g in groups
        )
        flat = {frozenset(g) for g in summaries}
        sizes = sorted(len(g) for g in groups)
        # S1's A(I1-1), S4's A(I1), S5's A(I1+1) are one set (M = [1, 0]);
        # S2's A(I2-1) is its own (M = [0, 1]); the two B refs are one set.
        assert sizes == [1, 2, 3]
        assert flat  # non-empty sanity

    def test_linear_parts(self, setup):
        nprog, _ = setup
        s2_b = ref_named(nprog, "S2", "B")
        # B(I2-1, I1): rows (0,1) and (1,0)
        assert linear_part(s2_b, nprog.depth) == ((0, 1), (1, 0))

    def test_cross_nest_grouping(self, setup):
        """A(I1-1) in S1 (nest 1) and A(I1+1) in S5 (nest 2) share a UGS."""
        nprog, _ = setup
        groups = uniformly_generated_sets(nprog)
        containing = [
            g
            for g in groups
            if any(r.leaf.stmt_label == "S1" and r.array.name == "A" for r in g)
        ]
        assert len(containing) == 1
        stmts = {r.leaf.stmt_label for r in containing[0]}
        assert {"S1", "S4", "S5"} <= stmts


class TestTemporalVectors:
    def test_paper_b_temporal_vector(self, setup):
        """The unique temporal vector B(I2-1,I1) -> B(I2,I1) is (0,0,1,-1)."""
        nprog, table = setup
        s3_b = ref_named(nprog, "S3", "B")
        temporal = [
            rv
            for rv in table.vectors_for(s3_b)
            if rv.kind == TEMPORAL and rv.producer.leaf.stmt_label == "S2"
        ]
        assert any(rv.vec == (0, 0, 1, -1) for rv in temporal)

    def test_group_temporal_s1_to_s4(self, setup):
        """A(I1-1) in S1 produces for A(I1) in S4: solve x = -1 at depth 1."""
        nprog, table = setup
        s4_a = ref_named(nprog, "S4", "A")
        vecs = [
            rv.vec
            for rv in table.vectors_for(s4_a)
            if rv.producer.leaf.stmt_label == "S1" and rv.kind == TEMPORAL
        ]
        # label diff (0, 1); x solves I1 - 1 + x1 = I1 -> wait: producer
        # A(I1-1), consumer A(I1): M x = m_p - m_c = -1, so x1 = -1.
        # Vectors must be lex-nonnegative: (0, -1, 1, *) is not, so the
        # reuse flows the other way (S4 produces for S5 etc.).
        for v in vecs:
            assert v >= (0,) * 4

    def test_self_temporal_needs_nullspace(self, setup):
        """A(I2-1) in S2 has self reuse along I1 (null space direction)."""
        nprog, table = setup
        s2_a = ref_named(nprog, "S2", "A")
        self_vecs = [
            rv.vec
            for rv in table.vectors_for(s2_a)
            if rv.is_self and rv.kind == TEMPORAL
        ]
        # A(I2-1) does not depend on I1: reuse along (0, 1, 0, 0).
        assert (0, 1, 0, 0) in self_vecs

    def test_sorted_increasing(self, setup):
        nprog, table = setup
        for ref in nprog.refs:
            vecs = [rv.vec for rv in table.vectors_for(ref)]
            assert vecs == sorted(vecs)

    def test_all_vectors_lex_nonnegative(self, setup):
        nprog, table = setup
        zero = None
        for rv in table.all_vectors():
            assert rv.vec >= tuple([0] * len(rv.vec))
            if all(c == 0 for c in rv.vec):
                zero = rv
                # r = 0 requires the producer lexically before the consumer
                assert rv.producer.lexpos < rv.consumer.lexpos
        del zero


class TestSpatialVectors:
    def test_paper_intra_column_family(self, setup):
        """Spatial vectors (0,0,1,-2), (0,0,1,-3) from B(I2-1,I1) to B(I2,I1)."""
        nprog, table = setup
        s3_b = ref_named(nprog, "S3", "B")
        spatial = {
            rv.vec
            for rv in table.vectors_for(s3_b)
            if rv.kind == SPATIAL and rv.producer.leaf.stmt_label == "S2"
        }
        assert (0, 0, 1, -2) in spatial
        assert (0, 0, 1, -3) in spatial

    def test_paper_cross_column_vector(self, setup):
        """Fig. 3: self-spatial (0, 1, 0, 1-N) for B(I2, I1)."""
        nprog, table = setup
        s3_b = ref_named(nprog, "S3", "B")
        self_spatial = {
            rv.vec for rv in table.vectors_for(s3_b) if rv.is_self and rv.kind == SPATIAL
        }
        assert (0, 1, 0, 1 - N) in self_spatial

    def test_self_spatial_unit_stride(self, setup):
        """B(I2, I1) walks a column: nearest self-spatial vector (0,0,0,1)."""
        nprog, table = setup
        s3_b = ref_named(nprog, "S3", "B")
        self_spatial = {
            rv.vec for rv in table.vectors_for(s3_b) if rv.is_self and rv.kind == SPATIAL
        }
        assert (0, 0, 0, 1) in self_spatial

    def test_no_spatial_for_single_element_lines(self):
        prog, _, _ = figure1_program(N)
        nprog = normalize(prog.main)
        table = build_reuse_table(nprog, line_bytes=8)  # Ls = 1 element
        assert all(rv.kind == TEMPORAL for rv in table.all_vectors())


class TestOptions:
    def test_disable_spatial(self):
        prog, _, _ = figure1_program(N)
        nprog = normalize(prog.main)
        table = build_reuse_table(
            nprog, LINE_BYTES, ReuseOptions(spatial=False)
        )
        assert all(rv.kind == TEMPORAL for rv in table.all_vectors())

    def test_disable_temporal(self):
        prog, _, _ = figure1_program(N)
        nprog = normalize(prog.main)
        table = build_reuse_table(
            nprog, LINE_BYTES, ReuseOptions(temporal=False)
        )
        assert all(rv.kind == SPATIAL for rv in table.all_vectors())

    def test_disable_cross_column_removes_fig3_vector(self):
        prog, _, _ = figure1_program(N)
        nprog = normalize(prog.main)
        table = build_reuse_table(
            nprog, LINE_BYTES, ReuseOptions(cross_column=False)
        )
        assert all(
            rv.vec != (0, 1, 0, 1 - N) for rv in table.all_vectors()
        )

    def test_counts_summary(self, setup):
        _, table = setup
        counts = table.counts()
        assert set(counts) == {
            "temporal-self",
            "temporal-group",
            "spatial-self",
            "spatial-group",
        }
        assert sum(counts.values()) == len(table.all_vectors())
