"""Concurrent-writer safety of the persistent memo store.

Many threads and many processes append to one ``cme-memo.jsonl`` at once;
afterwards the file must contain exactly one header, no torn lines, and
every appended entry — the locking + single-``write`` O_APPEND + atomic
rename contract of :mod:`repro.memo.store`.
"""

import json
import multiprocessing
import os
import threading

from repro.memo.store import MemoStore, STORE_SCHEMA

FINGERPRINT = "f" * 64  # fixed so every process binds the same store identity


def make_payload(i: int) -> list:
    return [100 + i, 100 + i, i, 0, 100]


def check_store_file(path: str, expected: dict) -> None:
    """Assert exactly one valid header and every expected entry, untorn."""
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    assert lines, "store file is empty"
    header = json.loads(lines[0])
    assert header == {"schema": STORE_SCHEMA, "fingerprint": FINGERPRINT}
    seen = {}
    for line in lines[1:]:
        entry = json.loads(line)  # a torn line would fail to parse
        assert set(entry) == {"k", "p"}
        seen[entry["k"]] = entry["p"]
    assert seen == expected
    # Loading back through the store must agree too.
    loaded = MemoStore(path, fingerprint=FINGERPRINT).load()
    assert loaded == expected


def test_threaded_appends_do_not_tear(tmp_path):
    path = str(tmp_path / "cme-memo.jsonl")
    n_threads, per_thread = 8, 25
    barrier = threading.Barrier(n_threads)

    def writer(tid):
        store = MemoStore(path, fingerprint=FINGERPRINT)
        barrier.wait()
        for j in range(per_thread):
            i = tid * per_thread + j
            store.append({f"key-{i:04d}": make_payload(i)})

    threads = [
        threading.Thread(target=writer, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    expected = {
        f"key-{i:04d}": make_payload(i)
        for i in range(n_threads * per_thread)
    }
    check_store_file(path, expected)


def _process_writer(args):
    path, pid, per_proc = args
    store = MemoStore(path, fingerprint=FINGERPRINT)
    for j in range(per_proc):
        i = pid * per_proc + j
        store.append({f"key-{i:04d}": make_payload(i)})
    return pid


def test_multiprocess_appends_do_not_tear(tmp_path):
    path = str(tmp_path / "cme-memo.jsonl")
    n_procs, per_proc = 4, 20
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(n_procs) as pool:
        done = pool.map(
            _process_writer, [(path, p, per_proc) for p in range(n_procs)]
        )
    assert sorted(done) == list(range(n_procs))
    expected = {
        f"key-{i:04d}": make_payload(i) for i in range(n_procs * per_proc)
    }
    check_store_file(path, expected)


def test_concurrent_fresh_rewrites_keep_a_single_header(tmp_path):
    """Every writer believes the file is missing; only one header survives."""
    path = str(tmp_path / "cme-memo.jsonl")
    n_threads = 8
    barrier = threading.Barrier(n_threads)

    def writer(tid):
        store = MemoStore(path, fingerprint=FINGERPRINT)
        barrier.wait()  # maximise the create/append race
        store.append({f"key-{tid:04d}": make_payload(tid)})

    threads = [
        threading.Thread(target=writer, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    expected = {f"key-{t:04d}": make_payload(t) for t in range(n_threads)}
    check_store_file(path, expected)
    assert not [
        name for name in os.listdir(tmp_path) if ".tmp." in name
    ], "temporary rewrite files must not be left behind"


def test_stale_rewrite_under_concurrent_appends(tmp_path):
    """A stale-marked writer rewriting must not lose concurrent appends
    made after its rewrite published (the lock serialises them)."""
    path = str(tmp_path / "cme-memo.jsonl")
    # Seed a file under a *different* fingerprint: the next load marks it
    # stale and the next append rewrites it from scratch.
    old = MemoStore(path, fingerprint="0" * 64)
    old.append({"old-key": [1, 1, 1, 0, 0]})
    stale = MemoStore(path, fingerprint=FINGERPRINT)
    assert stale.load() == {}  # wrong fingerprint -> stale
    fresh = MemoStore(path, fingerprint=FINGERPRINT)

    stale.append({"key-0000": make_payload(0)})  # rewrites the file
    fresh.append({"key-0001": make_payload(1)})  # appends to the new file
    expected = {"key-0000": make_payload(0), "key-0001": make_payload(1)}
    check_store_file(path, expected)
