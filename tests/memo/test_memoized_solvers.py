"""Memoized solver behaviour: dedup, replay, persistence, counter parity."""

from __future__ import annotations

import pytest

from repro import (
    CacheConfig,
    Memoizer,
    ProgramBuilder,
    analyze,
    prepare,
    run_simulation,
)
from repro.kernels import build_hydro

CACHE = CacheConfig.kb(4, 32, assoc=2)


def congruent_twin_nests(n=128):
    """Two identical independent nests over arrays congruent mod the cache.

    With a 1KB direct-mapped cache (32 sets x 32B lines) and A sized at
    exactly 1024 bytes, B's base lands at 1024 = 0 (mod num_sets * Ls):
    both nests produce byte-for-byte identical equation systems, so the
    second one must dedup against the first within a single cold run.
    """
    pb = ProgramBuilder("TWINS")
    a = pb.array("A", (n,))  # n * 8B = 1024 bytes for n = 128
    b = pb.array("B", (n,))
    with pb.subroutine("MAIN"):
        with pb.do("I", 1, n) as i:
            pb.assign(a[i])
        with pb.do("I", 1, n) as i:
            pb.assign(b[i])
    return pb.build()


class TestInRunDedup:
    def test_congruent_systems_classified_once(self):
        cache = CacheConfig.kb(1, 32, assoc=1)
        prepared = prepare(congruent_twin_nests())
        assert prepared.layout.base_of(prepared.nprog.refs[1].array) == 1024
        memo = Memoizer()
        report = analyze(prepared, cache, method="find", memo=memo)
        assert memo.groups == 1  # one distinct equation system
        assert memo.misses == 1 and memo.hits == 1
        # The replay is correct, not just cheap:
        assert report == analyze(prepared, cache, method="find")

    def test_estimate_never_dedups_across_references(self):
        # Estimate keys embed seed ^ ref.uid: structurally identical refs
        # draw different samples, so they must NOT share results.
        cache = CacheConfig.kb(1, 32, assoc=1)
        prepared = prepare(congruent_twin_nests())
        memo = Memoizer()
        analyze(prepared, cache, method="estimate", memo=memo, seed=3)
        assert memo.hits == 0 and memo.misses == 2 and memo.groups == 2


class TestColdWarm:
    @pytest.mark.parametrize("method", ["find", "estimate"])
    def test_warm_run_replays_bit_identically(self, tmp_path, method):
        prepared = prepare(build_hydro(24, 24))
        baseline = analyze(prepared, CACHE, method=method, seed=11)
        with Memoizer.open(str(tmp_path)) as cold:
            cold_report = analyze(
                prepared, CACHE, method=method, memo=cold, seed=11
            )
        with Memoizer.open(str(tmp_path)) as warm:
            warm_report = analyze(
                prepared, CACHE, method=method, memo=warm, seed=11
            )
        assert cold_report == baseline
        assert warm_report == baseline
        assert cold.hits == 0 and cold.misses > 0
        assert warm.misses == 0
        assert warm.hits == cold.hits + cold.misses
        assert warm.store_hits == warm.hits

    def test_estimate_seed_isolation_across_runs(self, tmp_path):
        # A warm store for seed 11 must not answer a seed-12 run.
        prepared = prepare(build_hydro(16, 16))
        with Memoizer.open(str(tmp_path)) as cold:
            analyze(prepared, CACHE, method="estimate", memo=cold, seed=11)
        with Memoizer.open(str(tmp_path)) as other:
            report = analyze(
                prepared, CACHE, method="estimate", memo=other, seed=12
            )
        assert other.hits == 0 and other.misses > 0
        assert report == analyze(prepared, CACHE, method="estimate", seed=12)

    def test_cache_geometry_isolation_across_runs(self, tmp_path):
        prepared = prepare(build_hydro(16, 16))
        with Memoizer.open(str(tmp_path)) as cold:
            analyze(prepared, CACHE, method="find", memo=cold)
        other_cache = CacheConfig.kb(8, 32, assoc=2)
        with Memoizer.open(str(tmp_path)) as warm:
            report = analyze(prepared, other_cache, method="find", memo=warm)
        assert warm.hits == 0  # no stale cross-geometry answers
        assert report == analyze(prepared, other_cache, method="find")

    def test_memoizer_spans_methods_without_collisions(self, tmp_path):
        # One memoizer can serve find and estimate in the same run; the
        # method tag keeps their key spaces disjoint.
        prepared = prepare(build_hydro(16, 16))
        with Memoizer.open(str(tmp_path)) as memo:
            find = analyze(prepared, CACHE, method="find", memo=memo)
            est = analyze(prepared, CACHE, method="estimate", memo=memo, seed=5)
        assert find == analyze(prepared, CACHE, method="find")
        assert est == analyze(prepared, CACHE, method="estimate", seed=5)


class TestParallelParity:
    @pytest.mark.parametrize("method", ["find", "estimate"])
    def test_serial_and_parallel_counters_match(self, method):
        prepared = prepare(build_hydro(24, 24))
        serial_memo = Memoizer()
        serial = analyze(
            prepared, CACHE, method=method, memo=serial_memo, seed=7
        )
        parallel_memo = Memoizer()
        parallel = analyze(
            prepared, CACHE, method=method, memo=parallel_memo, seed=7, jobs=2
        )
        assert serial == parallel
        assert (serial_memo.hits, serial_memo.misses, serial_memo.groups) == (
            parallel_memo.hits,
            parallel_memo.misses,
            parallel_memo.groups,
        )

    def test_warm_parallel_run_skips_the_pool(self, tmp_path):
        prepared = prepare(build_hydro(24, 24))
        with Memoizer.open(str(tmp_path)) as cold:
            base = analyze(prepared, CACHE, method="find", memo=cold)
        with Memoizer.open(str(tmp_path)) as warm:
            report = analyze(prepared, CACHE, method="find", memo=warm, jobs=4)
        assert report == base
        assert warm.misses == 0
        assert warm.hits == cold.hits + cold.misses

    def test_parallel_in_run_dedup_matches_serial(self):
        cache = CacheConfig.kb(1, 32, assoc=1)
        prepared = prepare(congruent_twin_nests())
        memo = Memoizer()
        report = analyze(prepared, cache, method="find", memo=memo, jobs=2)
        assert (memo.hits, memo.misses, memo.groups) == (1, 1, 1)
        assert report == analyze(prepared, cache, method="find")


class TestAgainstSimulator:
    def test_memoized_find_still_matches_simulation(self):
        # Hydro's reuse information is complete (paper Table 3): the
        # memoized exhaustive solver must stay exact.
        prepared = prepare(build_hydro(16, 16))
        memo = Memoizer()
        report = analyze(prepared, CACHE, method="find", memo=memo)
        sim = run_simulation(prepared, CACHE)
        assert report.total_misses == sim.total_misses
