"""Property tests for the canonical memo key (ISSUE 3 satellite).

The contract under test: keys are invariant under loop-variable renaming,
reordering of independent nests, frontend round-trips and whole-layout
translations by cache-extent multiples — and sensitive to every solver
input: cache size, line size, associativity, padding, IF guards and the
``EstimateMisses`` sampling parameters.
"""

from __future__ import annotations

import pytest

from repro import CacheConfig, MemoryLayout, ProgramBuilder, prepare
from repro.frontend import parse_program
from repro.layout.memory import layout_for_refs
from repro.memo import KeyBuilder
from repro.reuse.generator import ReuseOptions

CACHE = CacheConfig.kb(4, 32, assoc=2)


def builder_for(prepared, cache=CACHE) -> KeyBuilder:
    reuse = prepared.reuse_table(cache.line_bytes)
    return KeyBuilder(prepared.nprog, prepared.layout, cache, reuse)


def keys_of(program, cache=CACHE, method="find", params=()) -> list[str]:
    """The per-reference keys in construction (uid) order."""
    prepared = prepare(program)
    kb = builder_for(prepared, cache)
    return [kb.key(ref, method, params) for ref in prepared.nprog.refs]


def two_nest_program(name, i_var, j_var, n=20):
    """Two cross-reusing nests; loop-variable names are parameters."""
    pb = ProgramBuilder(name)
    a = pb.array("A", (n, n))
    b = pb.array("B", (n, n))
    with pb.subroutine("MAIN"):
        with pb.do(j_var, 1, n) as j:
            with pb.do(i_var, 1, n) as i:
                pb.assign(a[i, j], b[i, j])
        with pb.do(j_var, 1, n) as j:
            with pb.do(i_var, 1, n) as i:
                pb.read(a[i, j])
    return pb.build()


class TestInvariance:
    def test_loop_variable_renaming_preserves_keys(self):
        base = keys_of(two_nest_program("P", "I", "J"))
        renamed = keys_of(two_nest_program("P", "II", "KK"))
        assert base == renamed

    def test_independent_nest_reordering_preserves_keys(self):
        def program(order):
            pb = ProgramBuilder("P")
            # Declaration order is pinned, so both variants place A then B
            # at identical bases; only the nest order differs.
            a = pb.array("A", (24, 24))
            b = pb.array("B", (24, 24))
            nests = {
                "a": lambda: pb.assign(a[pb_i, pb_j], a[pb_i - 1, pb_j]),
                "b": lambda: pb.read(b[pb_i, pb_j]),
            }
            with pb.subroutine("MAIN"):
                for which in order:
                    with pb.do("J", 1, 24) as pb_j:
                        with pb.do("I", 2, 24) as pb_i:
                            nests[which]()
            return pb.build()

        first = prepare(program("ab"))
        second = prepare(program("ba"))
        assert first.layout == second.layout  # precondition: same placement
        kb1, kb2 = builder_for(first), builder_for(second)
        by_array_1 = {r.array.name: kb1.key(r, "find") for r in first.nprog.refs}
        by_array_2 = {r.array.name: kb2.key(r, "find") for r in second.nprog.refs}
        assert by_array_1 == by_array_2

    def test_frontend_round_trip_preserves_keys(self):
        n = 16
        pb = ProgramBuilder("P")
        a = pb.array("A", (n, n))
        with pb.subroutine("MAIN"):
            with pb.do("J", 1, n) as j:
                with pb.do("I", 1, n) as i:
                    pb.assign(a[i, j], a[i, j])
        built = pb.build()
        parsed = parse_program(
            f"""
      PROGRAM P
      DIMENSION A({n},{n})
      DO J = 1, {n}
        DO I = 1, {n}
          A(I,J) = A(I,J)
        ENDDO
      ENDDO
      END
"""
        )
        assert keys_of(built) == keys_of(parsed)

    def test_whole_layout_translation_by_cache_extent_preserves_keys(self):
        prog = two_nest_program("P", "I", "J")
        prepared = prepare(prog)
        reuse = prepared.reuse_table(CACHE.line_bytes)
        extent = CACHE.num_sets * CACHE.line_bytes
        shifted = layout_for_refs(
            prepared.nprog.refs,
            base=extent,  # translate everything by one cache extent
            align=32,
            declared_order=list(prog.all_arrays()),
        )
        kb0 = KeyBuilder(prepared.nprog, prepared.layout, CACHE, reuse)
        kb1 = KeyBuilder(prepared.nprog, shifted, CACHE, reuse)
        for ref in prepared.nprog.refs:
            assert kb0.key(ref, "find") == kb1.key(ref, "find")

    def test_sub_extent_translation_changes_keys(self):
        # A shift that is NOT a multiple of the cache extent changes set
        # mappings, so it must change keys.
        prog = two_nest_program("P", "I", "J")
        prepared = prepare(prog)
        reuse = prepared.reuse_table(CACHE.line_bytes)
        shifted = layout_for_refs(
            prepared.nprog.refs,
            base=CACHE.line_bytes,
            align=32,
            declared_order=list(prog.all_arrays()),
        )
        kb0 = KeyBuilder(prepared.nprog, prepared.layout, CACHE, reuse)
        kb1 = KeyBuilder(prepared.nprog, shifted, CACHE, reuse)
        ref = prepared.nprog.refs[0]
        assert kb0.key(ref, "find") != kb1.key(ref, "find")


class TestSensitivity:
    def guarded_program(self, bound):
        pb = ProgramBuilder("P")
        a = pb.array("A", (24, 24))
        with pb.subroutine("MAIN"):
            with pb.do("J", 1, 24) as j:
                with pb.do("I", 1, 24) as i:
                    with pb.if_(i.le(bound)):
                        pb.assign(a[i, j])
        return pb.build()

    @pytest.mark.parametrize(
        "other",
        [
            CacheConfig.kb(8, 32, assoc=2),  # size
            CacheConfig.kb(4, 64, assoc=2),  # line
            CacheConfig.kb(4, 32, assoc=1),  # associativity
        ],
    )
    def test_cache_geometry_changes_keys(self, other):
        prog = two_nest_program("P", "I", "J")
        assert keys_of(prog, CACHE) != keys_of(prog, other)

    def test_padding_changes_keys(self):
        prog = two_nest_program("P", "I", "J")
        plain = prepare(prog)
        padded = prepare(prog, pad_bytes=64)
        kb0, kb1 = builder_for(plain), builder_for(padded)
        keys0 = [kb0.key(r, "find") for r in plain.nprog.refs]
        keys1 = [kb1.key(r, "find") for r in padded.nprog.refs]
        assert keys0 != keys1

    def test_if_guard_changes_keys(self):
        assert keys_of(self.guarded_program(8)) != keys_of(
            self.guarded_program(9)
        )

    def test_method_and_sampling_params_change_keys(self):
        prog = two_nest_program("P", "I", "J")
        find = keys_of(prog, method="find")
        est_a = keys_of(prog, method="estimate", params=(0.95, 0.05, 7))
        est_b = keys_of(prog, method="estimate", params=(0.95, 0.05, 8))
        est_c = keys_of(prog, method="estimate", params=(0.90, 0.05, 7))
        assert len({tuple(find), tuple(est_a), tuple(est_b), tuple(est_c)}) == 4


class TestCanonicalSignatures:
    """Satellite small-fix: stable hash/serialization for key inputs."""

    def test_memory_layout_signature_is_order_independent(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (8,))
        b = pb.array("B", (8,))
        la = MemoryLayout([a, b], align=8)
        lb = MemoryLayout([b, a], base=0, align=8)
        assert la.signature() == tuple(sorted(la.signature()))
        assert la != lb  # different bases -> unequal
        lc = MemoryLayout([a, b], align=8)
        assert la == lc and hash(la) == hash(lc)
        assert la.signature() == lc.signature()

    def test_memory_layout_hashable_in_sets(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (8,))
        layouts = {MemoryLayout([a]), MemoryLayout([a]), MemoryLayout([a], base=128)}
        assert len(layouts) == 2

    def test_reuse_options_signature_sorted_by_field_name(self):
        sig = ReuseOptions().signature()
        names = [name for name, _ in sig]
        assert names == sorted(names)
        assert dict(sig) == {
            "temporal": True,
            "spatial": True,
            "cross_column": True,
            "null_combo_bound": 2,
            "max_null_dims": 3,
        }

    def test_reuse_options_signature_distinguishes_values(self):
        assert ReuseOptions().signature() != ReuseOptions(spatial=False).signature()
