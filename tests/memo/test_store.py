"""Corrupt/stale persistent-store robustness (ISSUE 3 satellite).

Every damaged-store scenario must degrade to a cold run with a
``memo.store.invalid`` counter bump — never a crash, never a wrong result.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.memo import STORE_SCHEMA, MemoStore, Memoizer, code_fingerprint


@pytest.fixture
def metrics():
    obs.enable()
    obs.reset()
    yield obs
    obs.disable()


def counter_value(name: str) -> int:
    return obs.registry().snapshot()["counters"].get(name, 0)


def write_lines(path, lines):
    path.write_text("".join(line + "\n" for line in lines))


def good_header() -> str:
    return json.dumps({"schema": STORE_SCHEMA, "fingerprint": code_fingerprint()})


def good_entry(key="ab" * 32, payload=(10, 10, 3, 2, 5)) -> str:
    return json.dumps({"k": key, "p": list(payload)})


class TestLoad:
    def test_missing_file_is_a_clean_cold_start(self, tmp_path, metrics):
        store = MemoStore(str(tmp_path / "absent.jsonl"))
        assert store.load() == {}
        assert counter_value("memo.store.invalid") == 0

    def test_round_trip(self, tmp_path, metrics):
        store = MemoStore(str(tmp_path / "s.jsonl"))
        store.append({"k1": [10, 10, 3, 2, 5], "k2": [4, 4, 4, 0, 0]})
        loaded = MemoStore(str(tmp_path / "s.jsonl")).load()
        assert loaded == {"k1": [10, 10, 3, 2, 5], "k2": [4, 4, 4, 0, 0]}
        assert counter_value("memo.store.loaded") == 2

    def test_wrong_schema_version_invalidates_everything(self, tmp_path, metrics):
        path = tmp_path / "s.jsonl"
        write_lines(
            path,
            [
                json.dumps(
                    {"schema": "repro.memo/v0", "fingerprint": code_fingerprint()}
                ),
                good_entry(),
            ],
        )
        store = MemoStore(str(path))
        assert store.load() == {}
        assert counter_value("memo.store.invalid") == 1

    def test_wrong_fingerprint_invalidates_everything(self, tmp_path, metrics):
        path = tmp_path / "s.jsonl"
        write_lines(
            path,
            [
                json.dumps({"schema": STORE_SCHEMA, "fingerprint": "stale"}),
                good_entry(),
            ],
        )
        assert MemoStore(str(path)).load() == {}
        assert counter_value("memo.store.invalid") == 1

    def test_garbage_header_invalidates_everything(self, tmp_path, metrics):
        path = tmp_path / "s.jsonl"
        write_lines(path, ["{not json", good_entry()])
        assert MemoStore(str(path)).load() == {}
        assert counter_value("memo.store.invalid") == 1

    def test_truncated_line_skipped_others_survive(self, tmp_path, metrics):
        path = tmp_path / "s.jsonl"
        entry = good_entry()
        write_lines(
            path,
            [good_header(), good_entry("aa" * 32), entry[: len(entry) // 2]],
        )
        loaded = MemoStore(str(path)).load()
        assert list(loaded) == ["aa" * 32]
        assert counter_value("memo.store.invalid") == 1

    @pytest.mark.parametrize(
        "bad",
        [
            json.dumps({"k": "x"}),  # missing payload
            json.dumps({"p": [1, 1, 1, 0, 0]}),  # missing key
            json.dumps({"k": "x", "p": [1, 2, 3]}),  # wrong arity
            json.dumps({"k": "x", "p": [1, -1, -1, 0, 0]}),  # negative
            json.dumps({"k": "x", "p": [10, 9, 3, 2, 5]}),  # tallies disagree
            json.dumps({"k": 5, "p": [1, 1, 1, 0, 0]}),  # non-string key
            json.dumps([1, 2, 3]),  # not an object
        ],
    )
    def test_malformed_entries_are_skipped(self, tmp_path, metrics, bad):
        path = tmp_path / "s.jsonl"
        write_lines(path, [good_header(), bad, good_entry("cc" * 32)])
        loaded = MemoStore(str(path)).load()
        assert list(loaded) == ["cc" * 32]
        assert counter_value("memo.store.invalid") == 1


class TestRewrite:
    def test_stale_store_is_rewritten_on_append(self, tmp_path, metrics):
        path = tmp_path / "s.jsonl"
        write_lines(
            path,
            [
                json.dumps({"schema": STORE_SCHEMA, "fingerprint": "stale"}),
                good_entry("dd" * 32),
            ],
        )
        store = MemoStore(str(path))
        assert store.load() == {}
        store.append({"ee" * 32: [3, 3, 1, 1, 1]})
        # The rewritten file has the current header and ONLY the new entry.
        reloaded = MemoStore(str(path)).load()
        assert list(reloaded) == ["ee" * 32]
        assert counter_value("memo.store.invalid") == 1

    def test_append_extends_a_valid_store(self, tmp_path, metrics):
        path = tmp_path / "s.jsonl"
        store = MemoStore(str(path))
        store.append({"k1": [1, 1, 1, 0, 0]})
        second = MemoStore(str(path))
        second.load()
        second.append({"k2": [2, 2, 0, 1, 1]})
        assert set(MemoStore(str(path)).load()) == {"k1", "k2"}

    def test_memoizer_survives_corrupt_store_end_to_end(self, tmp_path, metrics):
        from repro import CacheConfig, analyze, prepare
        from repro.kernels import build_hydro

        cache = CacheConfig.kb(4, 32, assoc=2)
        prepared = prepare(build_hydro(16, 16))
        baseline = analyze(prepared, cache, method="find")

        cache_dir = tmp_path / "memo"
        cache_dir.mkdir()
        write_lines(cache_dir / "cme-memo.jsonl", ["corrupt header", "junk"])
        with Memoizer.open(str(cache_dir)) as memo:
            report = analyze(prepared, cache, method="find", memo=memo)
        assert report == baseline
        assert memo.hits == 0  # nothing usable in the damaged store
        assert counter_value("memo.store.invalid") == 1
        # ... and the damaged file was replaced by a valid warm store.
        with Memoizer.open(str(cache_dir)) as memo2:
            warm = analyze(prepared, cache, method="find", memo=memo2)
        assert warm == baseline
        assert memo2.misses == 0 and memo2.hits > 0
