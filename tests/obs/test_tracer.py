"""The span tracer: nesting, aggregation, exception safety, merging."""

import pytest

from repro import obs
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, Tracer, traced


def names(spans):
    return [s["name"] for s in spans]


class TestNesting:
    def test_simple_nesting(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        snap = t.snapshot()
        assert names(snap) == ["outer"]
        assert names(snap[0]["children"]) == ["inner"]

    def test_repeated_spans_aggregate(self):
        t = Tracer()
        for _ in range(5):
            with t.span("phase"):
                pass
        (node,) = t.snapshot()
        assert node["count"] == 5
        assert node["seconds"] >= 0.0

    def test_siblings_stay_separate(self):
        t = Tracer()
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        assert names(t.snapshot()) == ["a", "b"]

    def test_current_name_follows_stack(self):
        t = Tracer()
        assert t.current_name() == "root"
        with t.span("outer"):
            assert t.current_name() == "outer"
            with t.span("inner"):
                assert t.current_name() == "inner"
            assert t.current_name() == "outer"
        assert t.current_name() == "root"


class TestExceptionSafety:
    def test_span_closes_on_exception(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("risky"):
                raise ValueError("boom")
        assert t.current_name() == "root"
        (node,) = t.snapshot()
        assert node["count"] == 1

    def test_nested_exception_unwinds_both_levels(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("outer"):
                with t.span("inner"):
                    raise RuntimeError
        assert t.current_name() == "root"
        (outer,) = t.snapshot()
        assert outer["count"] == 1
        assert outer["children"][0]["count"] == 1


class TestDecorator:
    def test_traced_records_under_global_tracer(self):
        @traced("worker_fn")
        def fn(x):
            return x + 1

        obs.enable()
        assert fn(1) == 2
        assert names(obs.tracer().snapshot()) == ["worker_fn"]

    def test_traced_is_free_when_disabled(self):
        @traced("worker_fn")
        def fn(x):
            return x * 2

        assert fn(21) == 42
        assert obs.tracer() is NULL_TRACER


class TestMergeReset:
    def test_merge_under_current_span(self):
        worker = Tracer()
        with worker.span("chunk"):
            pass
        parent = Tracer()
        with parent.span("parallel/solve"):
            parent.merge(worker.snapshot())
        (solve,) = parent.snapshot()
        assert names(solve["children"]) == ["chunk"]
        assert solve["children"][0]["count"] == 1

    def test_merge_accumulates_counts_and_seconds(self):
        parent = Tracer()
        snap = [{"name": "x", "count": 2, "seconds": 1.5, "children": []}]
        parent.merge(snap)
        parent.merge(snap)
        (node,) = parent.snapshot()
        assert node["count"] == 4
        assert node["seconds"] == pytest.approx(3.0)

    def test_reset_clears_tree_and_stack(self):
        t = Tracer()
        with t.span("a"):
            pass
        t.reset()
        assert t.snapshot() == []
        with t.span("b"):
            assert t.current_name() == "b"
        assert names(t.snapshot()) == ["b"]

    def test_phase_times(self):
        t = Tracer()
        with t.span("a"):
            pass
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        phases = t.phase_times()
        assert [(n, c) for n, c, _ in phases] == [("a", 2), ("b", 1)]


class TestDisabledMode:
    def test_null_span_is_shared_and_reusable(self):
        assert obs.span("anything") is NULL_SPAN
        assert obs.span("other") is NULL_SPAN
        with obs.span("nested"):
            with obs.span("deeper"):
                pass
        assert obs.tracer().snapshot() == []

    def test_enable_swaps_live_tracer_in(self):
        obs.enable()
        with obs.span("live"):
            pass
        assert names(obs.tracer().snapshot()) == ["live"]
        obs.disable()
        assert obs.tracer() is NULL_TRACER
