"""Exporters: JSON schema round-trip, validation, tree rendering."""

import json

from repro import obs
from repro.obs.export import (
    SCHEMA,
    build_snapshot,
    render_tree,
    to_json,
    top_counters,
    validate_snapshot,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer


def populated_snapshot():
    reg = MetricsRegistry()
    reg.counter("cme.points.classified").inc(100)
    reg.counter("polyhedra.intsolve.calls").inc(7)
    reg.gauge("parallel.jobs").set(4)
    reg.histogram("polyhedra.ris.volume").observe(961.0)
    tracer = Tracer()
    with tracer.span("cme/estimate"):
        with tracer.span("cme/classify_ref"):
            pass
    return build_snapshot(reg, tracer)


class TestRoundTrip:
    def test_snapshot_is_schema_valid(self):
        assert validate_snapshot(populated_snapshot()) == []

    def test_json_round_trip_preserves_document(self):
        snap = populated_snapshot()
        loaded = json.loads(to_json(snap))
        assert loaded == snap
        assert validate_snapshot(loaded) == []

    def test_schema_stamp(self):
        assert populated_snapshot()["schema"] == SCHEMA

    def test_json_is_deterministic(self):
        snap = populated_snapshot()
        assert to_json(snap) == to_json(json.loads(to_json(snap)))

    def test_global_snapshot_validates(self):
        obs.enable()
        obs.counter("a.b").inc()
        with obs.span("phase"):
            pass
        assert validate_snapshot(obs.snapshot()) == []

    def test_disabled_snapshot_validates(self):
        assert validate_snapshot(obs.snapshot()) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_snapshot([1, 2]) != []

    def test_rejects_wrong_schema(self):
        snap = populated_snapshot()
        snap["schema"] = "other/v9"
        assert any("schema" in e for e in validate_snapshot(snap))

    def test_rejects_non_int_counter(self):
        snap = populated_snapshot()
        snap["counters"]["bad"] = "7"
        assert any("bad" in e for e in validate_snapshot(snap))

    def test_rejects_bool_counter(self):
        snap = populated_snapshot()
        snap["counters"]["bad"] = True
        assert any("bad" in e for e in validate_snapshot(snap))

    def test_rejects_malformed_histogram(self):
        snap = populated_snapshot()
        snap["histograms"]["h"] = {"count": 1}
        assert any("missing" in e for e in validate_snapshot(snap))

    def test_rejects_malformed_span(self):
        snap = populated_snapshot()
        snap["spans"].append({"name": "x", "count": "1", "seconds": 0.0})
        assert validate_snapshot(snap) != []

    def test_rejects_bad_nested_span(self):
        snap = populated_snapshot()
        snap["spans"][0]["children"].append({"name": 5})
        assert validate_snapshot(snap) != []


class TestRendering:
    def test_render_tree_shows_names_counts_times(self):
        snap = populated_snapshot()
        text = render_tree(snap["spans"])
        assert "cme/estimate" in text
        assert "cme/classify_ref" in text
        assert "×1" in text

    def test_render_empty(self):
        assert "no spans" in render_tree([])


class TestTopCounters:
    def test_orders_by_value_then_name(self):
        snap = populated_snapshot()
        top = top_counters(snap, k=2)
        assert top[0] == ("cme.points.classified", 100)
        assert top[1] == ("polyhedra.intsolve.calls", 7)

    def test_stable_tie_break(self):
        snap = {"counters": {"b": 1, "a": 1}}
        assert top_counters(snap, k=2) == [("a", 1), ("b", 1)]
