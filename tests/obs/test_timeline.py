"""Timeline recording and the Chrome trace-event export.

The load-bearing contract: the timeline records the *same* elapsed float
per span entry that the aggregating tree accumulates, so for every span
name the timeline durations sum to the tree node's ``seconds`` exactly —
which is what makes ``--timeline-out`` and ``--metrics-out`` agree.
"""

import json
import os
import threading
import time

import pytest

from repro import CacheConfig, analyze, obs, prepare
from repro.kernels import build_hydro
from repro.obs.timeline import (
    TimelineRecorder,
    chrome_trace,
    sum_durations,
    write_chrome_trace,
)


def make_events():
    return [
        {"name": "a", "start": 1.0, "dur": 0.5, "pid": 100, "tid": 7},
        {"name": "b", "start": 1.2, "dur": 0.1, "pid": 100, "tid": 7},
        {"name": "a", "start": 2.0, "dur": 0.25, "pid": 200, "tid": 9},
    ]


class TestTimelineRecorder:
    def test_record_captures_pid_and_tid(self):
        rec = TimelineRecorder()
        rec.record("x", 10.0, 0.5)
        (event,) = rec.snapshot()
        assert event["name"] == "x"
        assert event["start"] == 10.0
        assert event["dur"] == 0.5
        assert event["pid"] == os.getpid()
        assert event["tid"] == threading.get_ident()

    def test_extend_folds_foreign_events(self):
        rec = TimelineRecorder()
        rec.extend(make_events())
        assert len(rec) == 3
        assert rec.snapshot()[2]["pid"] == 200

    def test_clear_drops_everything(self):
        rec = TimelineRecorder()
        rec.record("x", 0.0, 1.0)
        rec.clear()
        assert len(rec) == 0
        assert rec.snapshot() == []

    def test_snapshot_is_a_copy(self):
        rec = TimelineRecorder()
        rec.record("x", 0.0, 1.0)
        snap = rec.snapshot()
        snap.clear()
        assert len(rec) == 1


class TestChromeTrace:
    def test_events_shifted_to_zero_origin_microseconds(self):
        doc = chrome_trace(make_events(), main_pid=100)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["ts"] for e in xs] == pytest.approx([0.0, 0.2e6, 1.0e6])
        assert [e["dur"] for e in xs] == pytest.approx([0.5e6, 0.1e6, 0.25e6])

    def test_parent_lane_sorts_first(self):
        doc = chrome_trace(make_events(), main_pid=100)
        meta = {
            (e["pid"], e["name"]): e["args"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert meta[(100, "process_name")]["name"] == "repro (parent)"
        assert meta[(200, "process_name")]["name"] == "worker 200"
        assert meta[(100, "process_sort_index")]["sort_index"] == 0
        assert meta[(200, "process_sort_index")]["sort_index"] == 1

    def test_thread_idents_renumbered_per_process(self):
        events = make_events() + [
            {"name": "c", "start": 3.0, "dur": 0.1, "pid": 100, "tid": 999}
        ]
        doc = chrome_trace(events, main_pid=100)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        tids = {(e["pid"], e["tid"]) for e in xs}
        assert tids == {(100, 0), (100, 1), (200, 0)}
        thread_meta = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_meta[(100, 0)] == "main"
        assert thread_meta[(100, 1)] == "thread 1"

    def test_empty_events(self):
        doc = chrome_trace([], main_pid=100)
        assert doc["traceEvents"] == []

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "t.json"
        count = write_chrome_trace(str(path), make_events(), main_pid=100)
        assert count == 3
        doc = json.loads(path.read_text())
        assert {e["ph"] for e in doc["traceEvents"]} == {"M", "X"}


class TestSumDurations:
    def test_totals_per_name(self):
        totals = sum_durations(make_events())
        assert totals == {"a": 0.75, "b": 0.1}


@pytest.fixture
def cache():
    return CacheConfig.kb(2, 32, 2)


class TestTimelineModuleState:
    def test_enable_timeline_implies_enable(self):
        rec = obs.enable_timeline()
        assert obs.is_enabled()
        assert obs.timeline_enabled()
        assert obs.timeline() is rec

    def test_spans_feed_the_recorder(self):
        obs.enable_timeline()
        with obs.span("outer"):
            with obs.span("inner"):
                time.sleep(0.001)
        names = [e["name"] for e in obs.timeline_events()]
        assert names == ["inner", "outer"]  # exit order

    def test_durations_match_tree_exactly(self):
        obs.enable_timeline()
        for _ in range(3):
            with obs.span("work"):
                time.sleep(0.001)
        totals = sum_durations(obs.timeline_events())
        (tree_entry,) = [
            (name, secs)
            for name, _count, secs in obs.phase_times()
            if name == "work"
        ]
        assert totals["work"] == tree_entry[1]

    def test_disabled_timeline_records_nothing(self):
        obs.enable()
        with obs.span("quiet"):
            pass
        assert obs.timeline_events() == []
        assert not obs.timeline_enabled()

    def test_reset_clears_timeline(self):
        obs.enable_timeline()
        with obs.span("x"):
            pass
        obs.reset()
        assert obs.timeline_events() == []


class TestParallelTimeline:
    def test_serial_and_parallel_record_same_span_names(self, cache):
        prepared = prepare(build_hydro(16, 16))
        prepared.reuse_table(cache.line_bytes)  # warm, so both runs skip it
        obs.enable_timeline()
        analyze(prepared, cache, seed=0)
        serial_names = {e["name"] for e in obs.timeline_events()}
        serial_pids = {e["pid"] for e in obs.timeline_events()}
        obs.reset()
        analyze(prepared, cache, seed=0, jobs=4)
        parallel_events = obs.timeline_events()
        parallel_names = {e["name"] for e in parallel_events}
        parallel_pids = {e["pid"] for e in parallel_events}
        # The worker-level spans are identical; only the orchestration span
        # differs (serial drives cme/estimate, parallel drives
        # parallel/solve).
        assert serial_names - {"cme/estimate"} == parallel_names - {
            "parallel/solve"
        }
        assert serial_pids == {os.getpid()}
        assert len(parallel_pids) > 1  # distinct worker lanes
        assert os.getpid() in parallel_pids

    def test_worker_durations_match_merged_tree(self, cache):
        prepared = prepare(build_hydro(16, 16))
        obs.enable_timeline()
        analyze(prepared, cache, seed=0, jobs=2)
        totals = sum_durations(obs.timeline_events())
        for name, _count, secs in obs.phase_times():
            assert totals[name] == pytest.approx(secs, rel=1e-9)
