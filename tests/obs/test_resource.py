"""Resource accounting: peak RSS, GC deltas, tracemalloc attribution."""

import pytest

from repro import obs
from repro.obs.profile import SpanProfiler
from repro.obs.resource import (
    MemProfiler,
    SpanResourceMonitor,
    gc_totals,
    peak_rss_bytes,
)


class TestPeakRss:
    def test_positive_and_plausible(self):
        rss = peak_rss_bytes()
        # A running CPython process occupies at least 1 MiB and (on any
        # machine this suite targets) under 1 TiB.
        assert 1 << 20 < rss < 1 << 40

    def test_monotonic(self):
        before = peak_rss_bytes()
        ballast = [0] * 500_000
        after = peak_rss_bytes()
        assert after >= before
        del ballast


class TestGcTotals:
    def test_shape(self):
        collections, collected, uncollectable = gc_totals()
        assert collections >= 0
        assert collected >= 0
        assert uncollectable >= 0


class TestSpanResourceMonitor:
    def test_records_per_span_rss_gauges(self):
        obs.enable()
        monitor = SpanResourceMonitor()
        monitor.install(obs.tracer())
        with obs.span("phase_one"):
            pass
        monitor.uninstall()
        snap = obs.snapshot()
        gauge = snap["gauges"]["resource.rss_peak_bytes.phase_one"]
        assert gauge == pytest.approx(peak_rss_bytes(), rel=0.5)

    def test_finalize_records_run_wide_gauges(self):
        obs.enable()
        monitor = SpanResourceMonitor()
        monitor.install(obs.tracer())
        monitor.uninstall()
        monitor.finalize()
        gauges = obs.snapshot()["gauges"]
        assert gauges["resource.peak_rss_bytes"] > 0
        for name in (
            "resource.gc.collections",
            "resource.gc.collected",
            "resource.gc.uncollectable",
        ):
            assert name in gauges

    def test_uninstall_restores_previous_hook(self):
        obs.enable()
        tracer = obs.tracer()
        calls = []

        def previous_hook(name):
            calls.append(name)

        tracer.on_exit = previous_hook
        monitor = SpanResourceMonitor()
        monitor.install(tracer)
        with obs.span("x"):
            pass
        monitor.uninstall()
        assert tracer.on_exit is previous_hook
        assert calls == ["x"]  # previous hook still ran, chained

    def test_composes_with_span_profiler(self, tmp_path):
        # The profiler *overwrites* the hook slots; the monitor chains.
        # Install order therefore matters: profiler first, monitor second.
        obs.enable()
        tracer = obs.tracer()
        profiler = SpanProfiler("cme/estimate")
        profiler.install(tracer)
        monitor = SpanResourceMonitor()
        monitor.install(tracer)
        with obs.span("cme/estimate"):
            pass
        monitor.uninstall()
        profiler.uninstall(tracer)
        profiler.dump(str(tmp_path / "p.pstats"))
        gauges = obs.snapshot()["gauges"]
        assert "resource.rss_peak_bytes.cme/estimate" in gauges


class TestMemProfiler:
    def test_start_stop_reports_sites(self):
        prof = MemProfiler(top=5)
        prof.start()
        ballast = ["x" * 100 for _ in range(1000)]
        sites = prof.stop()
        del ballast
        assert 0 < len(sites) <= 5
        for site in sites:
            assert ":" in site["site"]
            assert site["size_bytes"] > 0
            assert site["count"] > 0

    def test_records_peak_gauge_when_enabled(self):
        obs.enable()
        prof = MemProfiler()
        prof.start()
        prof.stop()
        assert obs.snapshot()["gauges"]["resource.tracemalloc_peak_bytes"] > 0

    def test_stop_without_start_is_safe(self):
        assert MemProfiler().stop() == []

    def test_format_sites(self):
        text = MemProfiler.format_sites(
            [{"site": "f.py:1", "size_bytes": 2048, "count": 3}]
        )
        assert "f.py:1" in text
        assert "2.0 KiB" in text
        assert MemProfiler.format_sites([]).endswith("(no allocations traced)")
