"""Schema stability of the ``repro.metrics/v1`` name namespace.

The golden lists below enumerate every counter, gauge and histogram a
fully exercised pipeline run produces — cold + warm memoized FindMisses
(serial and ``jobs=2``), EstimateMisses, RegionMisses, and both simulator
backends on one pinned workload.  The exporter treats names as opaque keys, so the
*schema* never changes when metrics are added — but dashboards, the run
ledger and the regression checker key on the names themselves.  Renaming
or dropping one is a breaking change; this test makes it a deliberate one
(update the golden list in the same commit, and say so in README's
metric-namespace table).
"""

import pytest

from repro import CacheConfig, Memoizer, analyze, obs, prepare, run_simulation
from repro.kernels import build_hydro

GOLDEN_COUNTERS = {
    "cme.backend.fallback_points",
    "cme.backend.vectorized_points",
    "cme.points.classified",
    "cme.points.cold",
    "cme.points.hit",
    "cme.points.replacement",
    "cme.refs.analysed",
    "cme.regions.exact_regions",
    "cme.regions.fallback_cells",
    "cme.regions.fallback_points",
    "cme.regions.fallback_regions",
    "cme.sampling.draws",
    "cme.sampling.fallbacks",
    "cme.solver.vector_trials",
    "memo.dedup.groups",
    "memo.hits",
    "memo.misses",
    "memo.store.appended",
    "memo.store.hits",
    "memo.store.loaded",
    "parallel.chunks",
    "polyhedra.count.cache_hits",
    "polyhedra.intsolve.calls",
    "polyhedra.intsolve.solutions",
    "polyhedra.nullspace.calls",
    "reuse.ugs.count",
    "reuse.vectors.cross_column",
    "reuse.vectors.spatial_group",
    "reuse.vectors.spatial_self",
    "reuse.vectors.temporal_group",
    "reuse.vectors.temporal_self",
    "reuse.vectors.total",
    "sim.accesses",
    "sim.evictions",
    "sim.hits",
    "sim.misses",
    "sim.policy.lru",
}

#: Only recorded when the vectorized simulator backend actually runs.
GOLDEN_NUMPY_COUNTERS = {
    "sim.backend.batch.accesses",
    "sim.backend.batch.runs",
}

GOLDEN_GAUGES = {
    "parallel.jobs",
}

GOLDEN_HISTOGRAMS = {
    "parallel.shard_size",
    "parallel.worker_peak_rss_bytes",
    "parallel.worker_seconds",
    "polyhedra.ris.volume",
    "reuse.ugs.size",
}


@pytest.fixture(scope="module")
def pipeline_snapshot(tmp_path_factory):
    """One fully exercised pipeline run's metrics snapshot."""
    pytest.importorskip("numpy")
    store = str(tmp_path_factory.mktemp("memo"))
    obs.enable()
    obs.reset()
    try:
        prepared = prepare(build_hydro(16, 16))
        cache = CacheConfig.kb(2, 32, 2)
        with Memoizer.open(store) as memo:
            analyze(prepared, cache, method="find", memo=memo, jobs=2)
        with Memoizer.open(store) as memo:
            analyze(prepared, cache, method="find", memo=memo)
        analyze(prepared, cache, method="estimate", seed=0)
        analyze(prepared, cache, method="regions")
        run_simulation(prepared, cache, backend="scalar")
        run_simulation(prepared, cache, backend="numpy")
        return obs.snapshot()
    finally:
        obs.disable()


class TestMetricNameStability:
    def test_counter_names_exact(self, pipeline_snapshot):
        expected = GOLDEN_COUNTERS | GOLDEN_NUMPY_COUNTERS
        assert set(pipeline_snapshot["counters"]) == expected

    def test_gauge_names_exact(self, pipeline_snapshot):
        assert set(pipeline_snapshot["gauges"]) == GOLDEN_GAUGES

    def test_histogram_names_exact(self, pipeline_snapshot):
        assert set(pipeline_snapshot["histograms"]) == GOLDEN_HISTOGRAMS

    def test_names_are_dotted_lowercase(self, pipeline_snapshot):
        for kind in ("counters", "gauges", "histograms"):
            for name in pipeline_snapshot[kind]:
                assert name == name.lower()
                assert "." in name
                assert " " not in name
