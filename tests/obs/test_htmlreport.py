"""The self-contained HTML perf dashboard."""

from repro.obs.htmlreport import build_report, write_report
from repro.obs.ledger import build_row


def rows_for(label, walls, **kwargs):
    return [
        build_row(
            label,
            phases={"solve": wall * 0.8, "prep": wall * 0.2},
            wall_seconds=wall,
            counters={"cme.points.classified": 100},
            **kwargs,
        )
        for wall in walls
    ]


class TestBuildReport:
    def test_empty_ledger(self):
        html = build_report([])
        assert "<!doctype html>" in html
        assert "ledger is empty" in html

    def test_sections_per_baseline_key(self):
        rows = rows_for("bench:a", [1.0, 1.1]) + rows_for("bench:b", [2.0])
        html = build_report(rows, title="My Report")
        assert "<title>My Report</title>" in html
        assert "bench:a" in html
        assert "bench:b" in html
        assert html.count("<h2>") == 2
        assert "2 run(s)" in html
        assert "3 ledger row(s)" in html

    def test_charts_and_counters_render(self):
        html = build_report(rows_for("bench:a", [1.0, 1.5, 1.2]))
        assert 'aria-label="wall-time trajectory"' in html
        assert 'aria-label="phase breakdown"' in html
        assert "cme.points.classified" in html
        assert "points_per_second" in html  # derived row

    def test_no_external_assets(self):
        html = build_report(rows_for("bench:a", [1.0]))
        assert "http://" not in html
        assert "https://" not in html
        assert "<script" not in html

    def test_labels_are_escaped(self):
        html = build_report(rows_for("<bench>&co", [1.0]))
        assert "<bench>" not in html
        assert "&lt;bench&gt;&amp;co" in html

    def test_cache_and_config_shown(self):
        html = build_report(
            rows_for("bench:a", [1.0], cache="4KB/32B 2-way", config={"jobs": 4})
        )
        assert "4KB/32B 2-way" in html
        assert "jobs=4" in html


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = str(tmp_path / "report.html")
        assert write_report(path, rows_for("bench:a", [1.0])) == path
        text = open(path).read()
        assert text.startswith("<!doctype html>")
        assert text.endswith("</html>\n")
