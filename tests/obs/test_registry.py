"""The metrics registry: instruments, merge semantics, disabled mode."""

import threading

import pytest

from repro.obs.registry import (
    BUCKET_BOUNDS,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(41)
        assert reg.counter("a.b").value == 42

    def test_counter_identity_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x") is not reg.counter("y")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("jobs").set(4)
        reg.gauge("jobs").set(2)
        assert reg.gauge("jobs").value == 2

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (5.0, 1.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 9.0
        assert h.min == 1.0
        assert h.max == 5.0
        assert h.mean == 3.0

    def test_empty_histogram(self):
        h = MetricsRegistry().histogram("h")
        assert h.mean == 0.0
        assert h.as_dict() == {"count": 0, "sum": 0.0, "min": None, "max": None}


class TestHistogramPercentiles:
    """Pin the linear-interpolation estimator to exact values.

    The ladder is 1-2-5 geometric, so [1, 2, 3, 4] lands in buckets
    (0.5, 1], (1, 2], (2, 5], (2, 5].  With the first/last occupied
    buckets tightened to the observed min/max, p0 and p100 are exact and
    interior percentiles interpolate within bucket bounds.
    """

    def make(self, values):
        h = MetricsRegistry().histogram("h")
        for v in values:
            h.observe(v)
        return h

    def test_small_sample_pinned_values(self):
        h = self.make([1.0, 2.0, 3.0, 4.0])
        assert h.percentile(0) == 1.0
        assert h.percentile(25) == 1.0
        assert h.percentile(50) == 2.0
        assert h.percentile(75) == 3.0
        assert h.percentile(100) == 4.0

    def test_interpolates_within_bucket_not_at_bound(self):
        # Both values share the (10, 20] bucket; the tightened bucket is
        # [11, 12], so p99 interpolates to 11 + 0.99 * (12 - 11) and must
        # NOT snap to the raw bucket bound 20.
        h = self.make([11.0, 12.0])
        assert h.percentile(99) == pytest.approx(11.99)

    def test_overflow_bucket_uses_observed_max(self):
        top = BUCKET_BOUNDS[-1]
        h = self.make([top * 2])
        assert h.percentile(50) == top * 2

    def test_empty_histogram_has_no_percentiles(self):
        h = MetricsRegistry().histogram("h")
        assert h.percentile(50) is None

    def test_out_of_range_percentile_rejected(self):
        h = self.make([1.0])
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_null_histogram_percentile_is_none(self):
        assert NULL_HISTOGRAM.percentile(50) is None

    def test_buckets_serialized_only_when_occupied(self):
        h = self.make([1.5])
        d = h.as_dict()
        assert d["buckets"] == [[2.0, 1]]

    def test_merge_folds_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(1.5)
        b.histogram("h").observe(1.6)
        a.merge(b.snapshot())
        h = a.histogram("h")
        assert h.as_dict()["buckets"] == [[2.0, 2]]
        assert h.percentile(100) == 1.6


class TestSnapshotMerge:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 7}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_accumulates_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(10)
        b.counter("c").inc(32)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(9.0)
        a.merge(b.snapshot())
        assert a.counter("c").value == 42
        h = a.histogram("h")
        assert (h.count, h.sum, h.min, h.max) == (2, 10.0, 1.0, 9.0)

    def test_merge_into_empty_registry(self):
        src = MetricsRegistry()
        src.counter("c").inc(3)
        src.gauge("g").set(2)
        src.histogram("h").observe(4.0)
        dst = MetricsRegistry()
        dst.merge(src.snapshot())
        assert dst.snapshot() == src.snapshot()

    def test_merge_empty_histogram_is_noop(self):
        dst = MetricsRegistry()
        dst.histogram("h").observe(1.0)
        dst.merge({"histograms": {"h": {"count": 0, "sum": 0.0, "min": None, "max": None}}})
        assert dst.histogram("h").count == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_threaded_increments_do_not_lose_counts(self):
        reg = MetricsRegistry()
        c = reg.counter("threads")

        def spin():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestNullRegistry:
    def test_shared_singletons_allocate_nothing_per_event(self):
        # Every lookup returns the same module-level no-op object: the
        # disabled path creates no instrument, no dict entry, no state.
        assert NULL_REGISTRY.counter("a") is NULL_COUNTER
        assert NULL_REGISTRY.counter("b") is NULL_COUNTER
        assert NULL_REGISTRY.gauge("a") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("a") is NULL_HISTOGRAM

    def test_noop_recording(self):
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(5)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0
        assert NULL_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_null_instruments_have_no_instance_dict(self):
        # __slots__ = () guarantees no per-instance allocation is possible.
        assert not hasattr(NULL_COUNTER, "__dict__")
        assert not hasattr(NULL_HISTOGRAM, "__dict__")

    def test_merge_and_reset_are_noops(self):
        NULL_REGISTRY.merge({"counters": {"c": 3}})
        NULL_REGISTRY.reset()
        assert NULL_REGISTRY.counter("c").value == 0
