"""The metrics registry: instruments, merge semantics, disabled mode."""

import threading

from repro.obs.registry import (
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(41)
        assert reg.counter("a.b").value == 42

    def test_counter_identity_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x") is not reg.counter("y")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("jobs").set(4)
        reg.gauge("jobs").set(2)
        assert reg.gauge("jobs").value == 2

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (5.0, 1.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 9.0
        assert h.min == 1.0
        assert h.max == 5.0
        assert h.mean == 3.0

    def test_empty_histogram(self):
        h = MetricsRegistry().histogram("h")
        assert h.mean == 0.0
        assert h.as_dict() == {"count": 0, "sum": 0.0, "min": None, "max": None}


class TestSnapshotMerge:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 7}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_accumulates_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(10)
        b.counter("c").inc(32)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(9.0)
        a.merge(b.snapshot())
        assert a.counter("c").value == 42
        h = a.histogram("h")
        assert (h.count, h.sum, h.min, h.max) == (2, 10.0, 1.0, 9.0)

    def test_merge_into_empty_registry(self):
        src = MetricsRegistry()
        src.counter("c").inc(3)
        src.gauge("g").set(2)
        src.histogram("h").observe(4.0)
        dst = MetricsRegistry()
        dst.merge(src.snapshot())
        assert dst.snapshot() == src.snapshot()

    def test_merge_empty_histogram_is_noop(self):
        dst = MetricsRegistry()
        dst.histogram("h").observe(1.0)
        dst.merge({"histograms": {"h": {"count": 0, "sum": 0.0, "min": None, "max": None}}})
        assert dst.histogram("h").count == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_threaded_increments_do_not_lose_counts(self):
        reg = MetricsRegistry()
        c = reg.counter("threads")

        def spin():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestNullRegistry:
    def test_shared_singletons_allocate_nothing_per_event(self):
        # Every lookup returns the same module-level no-op object: the
        # disabled path creates no instrument, no dict entry, no state.
        assert NULL_REGISTRY.counter("a") is NULL_COUNTER
        assert NULL_REGISTRY.counter("b") is NULL_COUNTER
        assert NULL_REGISTRY.gauge("a") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("a") is NULL_HISTOGRAM

    def test_noop_recording(self):
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(5)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0
        assert NULL_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_null_instruments_have_no_instance_dict(self):
        # __slots__ = () guarantees no per-instance allocation is possible.
        assert not hasattr(NULL_COUNTER, "__dict__")
        assert not hasattr(NULL_HISTOGRAM, "__dict__")

    def test_merge_and_reset_are_noops(self):
        NULL_REGISTRY.merge({"counters": {"c": 3}})
        NULL_REGISTRY.reset()
        assert NULL_REGISTRY.counter("c").value == 0
