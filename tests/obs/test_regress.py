"""Statistical regression checking against ledger history.

The acceptance pair: a synthetic 2x slowdown must fail the check
(non-zero exit) and a faithful replay of the recorded baseline must pass
(zero exit) — with enough noise tolerance between the two that shared CI
runners do not false-positive.
"""

import pytest

from repro.obs.ledger import append_row, build_row
from repro.obs.regress import (
    CheckResult,
    check_ledger,
    check_rows,
    exit_code,
)


def history_rows(walls, label="bench:x", config=None):
    return [
        build_row(
            label,
            config=config or {"jobs": 1},
            phases={},
            wall_seconds=wall,
            counters={},
        )
        for wall in walls
    ]


def current_row(wall, label="bench:x", config=None):
    return history_rows([wall], label=label, config=config)[0]


class TestCheckRows:
    def test_two_x_slowdown_regresses(self):
        history = history_rows([1.0, 1.02, 0.98, 1.01, 0.99])
        (result,) = check_rows(history, [current_row(2.0)])
        assert result.regressed
        assert result.ratio == pytest.approx(2.0 / 0.98)
        assert exit_code([result]) == 1

    def test_replay_of_baseline_passes(self):
        history = history_rows([1.0, 1.02, 0.98, 1.01, 0.99])
        (result,) = check_rows(history, [current_row(1.0)])
        assert result.status == "ok"
        assert exit_code([result]) == 0

    def test_jitter_within_threshold_passes(self):
        history = history_rows([1.0, 1.05, 0.97])
        (result,) = check_rows(history, [current_row(1.3)])
        assert result.status == "ok"

    def test_min_of_k_window_discards_older_rows(self):
        # Old fast run outside the k=2 window; baseline is min(1.0, 1.1).
        history = history_rows([0.1, 1.0, 1.1])
        (result,) = check_rows(
            history, [current_row(1.2)], baseline_k=2, threshold=1.5
        )
        assert result.baseline == 1.0
        assert result.status == "ok"

    def test_noise_floor_ignores_micro_runs(self):
        history = history_rows([0.001, 0.001])
        (result,) = check_rows(history, [current_row(0.003)])
        assert result.status == "ok"  # 3x but only 2ms absolute

    def test_confidence_gate_blocks_noisy_history(self):
        # Wildly noisy history: the min-of-k ratio alone would trip, but
        # the current time is within the history's spread.
        history = history_rows([1.0, 4.0, 1.2, 3.8, 1.1])
        (result,) = check_rows(history, [current_row(2.0)])
        assert result.status == "ok"

    def test_no_baseline_never_fails(self):
        (result,) = check_rows([], [current_row(5.0)])
        assert result.status == "no-baseline"
        assert not result.regressed
        assert exit_code([result]) == 0

    def test_different_config_is_a_fresh_history(self):
        history = history_rows([1.0, 1.0], config={"jobs": 1})
        (result,) = check_rows(
            history, [current_row(5.0, config={"jobs": 4})]
        )
        assert result.status == "no-baseline"

    def test_row_without_wall_reports_no_metric(self):
        row = current_row(1.0)
        row["wall_seconds"] = None
        row["phases"] = {}
        (result,) = check_rows(history_rows([1.0]), [row])
        assert result.status == "no-metric"

    def test_phases_stand_in_for_missing_wall(self):
        row = current_row(1.0)
        row["wall_seconds"] = None
        row["phases"] = {"solve": 0.6, "prep": 0.4}
        (result,) = check_rows(history_rows([1.0, 1.0]), [row])
        assert result.current == pytest.approx(1.0)

    def test_hard_threshold_validation(self):
        with pytest.raises(ValueError):
            check_rows([], [], threshold=2.0, hard_threshold=1.5)


class TestWarnOnly:
    def make(self, ratio):
        history = history_rows([1.0, 1.0, 1.0, 1.0, 1.0])
        (result,) = check_rows(
            history, [current_row(ratio)], threshold=1.5, hard_threshold=3.0
        )
        return result

    def test_soft_regression_warns_but_passes(self):
        result = self.make(2.0)
        assert result.regressed and not result.hard
        assert exit_code([result], warn_only=True) == 0
        assert exit_code([result], warn_only=False) == 1

    def test_hard_regression_fails_even_warn_only(self):
        result = self.make(4.0)
        assert result.hard
        assert exit_code([result], warn_only=True) == 1


class TestCheckLedger:
    def test_latest_row_checked_against_earlier(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        for row in history_rows([1.0, 1.0, 1.0, 2.5]):
            append_row(path, row)
        (result,) = check_ledger(path)
        assert result.regressed

    def test_current_path_checks_foreign_rows(self, tmp_path):
        base = str(tmp_path / "baseline.jsonl")
        cur = str(tmp_path / "current.jsonl")
        for row in history_rows([1.0, 1.0, 1.0]):
            append_row(base, row)
        append_row(cur, current_row(1.05))
        (result,) = check_ledger(base, current_path=cur)
        assert result.status == "ok"

    def test_empty_ledger_checks_nothing(self, tmp_path):
        assert check_ledger(str(tmp_path / "none.jsonl")) == []


class TestDescribe:
    def test_one_liners(self):
        assert "no baseline" in CheckResult("k", "x", "no-baseline").describe()
        ok = CheckResult(
            "k", "x", "ok", current=1.0, baseline=1.0, ratio=1.0, history=3
        )
        assert "ok" in ok.describe()
        hard = CheckResult(
            "k",
            "x",
            "regression",
            current=4.0,
            baseline=1.0,
            ratio=4.0,
            history=3,
            hard=True,
        )
        assert "HARD" in hard.describe()
