"""Every observability test starts and ends with the global state off."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    yield
    obs.disable()
