"""Pipeline integration: the Fig. 7 stages feed the observability layer.

The load-bearing property is the cross-process contract of the parallel
engine: with observability enabled, the counters merged back from
``jobs > 1`` workers must equal the serial run's counts exactly — same
points classified, same outcome tallies — because the per-reference work
is deterministic under the ``seed ^ ref.uid`` scheme.
"""

import pytest

from repro import CacheConfig, analyze, obs, prepare, run_simulation
from repro.kernels import build_hydro
from repro.obs.export import validate_snapshot

SOLVE_COUNTERS = [
    "cme.points.classified",
    "cme.points.cold",
    "cme.points.replacement",
    "cme.points.hit",
    "cme.refs.analysed",
    "cme.solver.vector_trials",
    "cme.sampling.draws",
]


@pytest.fixture(scope="module")
def prepared():
    return prepare(build_hydro(24, 24))


@pytest.fixture(scope="module")
def cache():
    return CacheConfig.kb(4, 32, 2)


def solve_counters(snapshot):
    counters = snapshot["counters"]
    return {name: counters.get(name, 0) for name in SOLVE_COUNTERS}


class TestSerialInstrumentation:
    def test_estimate_records_phase_spans_and_counters(self, cache):
        obs.enable()
        prepared = prepare(build_hydro(24, 24))
        report = analyze(prepared, cache, seed=0)
        snap = obs.snapshot()
        span_names = {s["name"] for s in snap["spans"]}
        assert {"prepare/normalise", "prepare/layout", "reuse/build_table",
                "cme/estimate"} <= span_names
        counters = snap["counters"]
        assert counters["cme.points.classified"] == report.analysed_points
        assert counters["cme.refs.analysed"] == len(report.results)
        assert counters["polyhedra.intsolve.calls"] > 0
        assert counters["reuse.vectors.total"] > 0
        assert validate_snapshot(snap) == []

    def test_breakdown_matches_outcome_counters(self, prepared, cache):
        obs.enable()
        report = analyze(prepared, cache, seed=0)
        counters = obs.snapshot()["counters"]
        cold = sum(r.cold for r in report.results.values())
        repl = sum(r.replacement for r in report.results.values())
        hits = sum(r.hits for r in report.results.values())
        assert counters["cme.points.cold"] == cold
        assert counters["cme.points.replacement"] == repl
        assert counters["cme.points.hit"] == hits

    def test_find_records_ris_volumes(self, prepared, cache):
        obs.enable()
        report = analyze(prepared, cache, method="find")
        snap = obs.snapshot()
        hist = snap["histograms"]["polyhedra.ris.volume"]
        assert hist["count"] == len(report.results)
        assert hist["sum"] == report.total_accesses

    def test_simulation_counters(self, prepared, cache):
        obs.enable()
        report = run_simulation(prepared, cache, backend="scalar")
        counters = obs.snapshot()["counters"]
        assert counters["sim.accesses"] == report.total_accesses
        assert counters["sim.misses"] == report.total_misses
        assert counters["sim.hits"] == (
            report.total_accesses - report.total_misses
        )
        assert counters["sim.evictions"] <= counters["sim.misses"]
        assert {s["name"] for s in obs.snapshot()["spans"]} >= {"sim/walk"}

    def test_batch_simulation_counters_match_scalar(self, prepared, cache):
        pytest.importorskip("numpy")
        obs.enable()
        run_simulation(prepared, cache, backend="scalar")
        scalar = {
            k: v
            for k, v in obs.snapshot()["counters"].items()
            if k.startswith("sim.") and not k.startswith("sim.backend.")
        }
        obs.reset()
        report = run_simulation(prepared, cache, backend="numpy")
        snap = obs.snapshot()
        batch = {
            k: v
            for k, v in snap["counters"].items()
            if k.startswith("sim.") and not k.startswith("sim.backend.")
        }
        # Accesses, misses, hits *and* evictions agree — the batch kernel
        # recovers evictions analytically, without replaying LRU state.
        assert batch == scalar
        assert snap["counters"]["sim.backend.batch.runs"] == 1
        assert (
            snap["counters"]["sim.backend.batch.accesses"]
            == report.total_accesses
        )
        assert {s["name"] for s in snap["spans"]} >= {"sim/decode", "sim/batch"}


class TestParallelMerge:
    @pytest.mark.parametrize("method", ["estimate", "find"])
    def test_merged_counters_equal_serial(self, prepared, cache, method):
        obs.enable()
        serial_report = analyze(prepared, cache, method=method, seed=0)
        serial = solve_counters(obs.snapshot())
        obs.reset()
        parallel_report = analyze(
            prepared, cache, method=method, seed=0, jobs=2
        )
        merged = solve_counters(obs.snapshot())
        assert serial_report == parallel_report
        assert merged == serial

    def test_worker_spans_merge_under_parallel_solve(self, prepared, cache):
        obs.enable()
        analyze(prepared, cache, seed=0, jobs=2)
        spans = {s["name"]: s for s in obs.snapshot()["spans"]}
        solve = spans["parallel/solve"]
        children = {c["name"]: c for c in solve["children"]}
        assert children["cme/classify_ref"]["count"] == len(
            prepared.nprog.refs
        )

    def test_parallel_bookkeeping_metrics(self, prepared, cache):
        obs.enable()
        analyze(prepared, cache, seed=0, jobs=2)
        snap = obs.snapshot()
        assert snap["gauges"]["parallel.jobs"] == 2
        chunks = snap["counters"]["parallel.chunks"]
        assert chunks >= 2
        shard = snap["histograms"]["parallel.shard_size"]
        assert shard["count"] == chunks
        assert shard["sum"] == len(prepared.nprog.refs)
        assert snap["histograms"]["parallel.worker_seconds"]["count"] == chunks

    def test_parallel_report_carries_metrics_snapshot(self, prepared, cache):
        obs.enable()
        report = analyze(prepared, cache, seed=0, jobs=2)
        assert report.metrics is not None
        assert validate_snapshot(report.metrics) == []


class TestReportMetricsField:
    def test_metrics_attached_when_enabled(self, prepared, cache):
        obs.enable()
        report = analyze(prepared, cache, seed=0)
        assert report.metrics is not None
        assert report.metrics["counters"]["cme.points.classified"] > 0

    def test_metrics_none_when_disabled(self, prepared, cache):
        report = analyze(prepared, cache, seed=0)
        assert report.metrics is None

    def test_metrics_excluded_from_equality(self, prepared, cache):
        plain = analyze(prepared, cache, seed=0)
        obs.enable()
        observed = analyze(prepared, cache, seed=0)
        assert observed.metrics is not None
        assert plain == observed
        assert "metrics" not in repr(observed)


class TestDisabledMode:
    def test_disabled_run_records_nothing(self, prepared, cache):
        analyze(prepared, cache, seed=0)
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["spans"] == []

    def test_disabled_and_enabled_reports_identical(self, prepared, cache):
        plain = analyze(prepared, cache, seed=0, jobs=2)
        obs.enable()
        observed = analyze(prepared, cache, seed=0, jobs=2)
        assert plain == observed
