"""The append-only run ledger: row building, keys, and damage tolerance."""

import json

from repro import CacheConfig, obs
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    append_row,
    build_row,
    by_key,
    read_ledger,
    row_key,
)


class TestBuildRow:
    def test_explicit_row(self):
        row = build_row(
            "bench:x",
            program="hydro",
            cache=CacheConfig.kb(4, 32, 2),
            config={"jobs": 2},
            phases={"solve": 1.5, "prep": 0.5},
            counters={"cme.points.classified": 100},
        )
        assert row["schema"] == LEDGER_SCHEMA
        assert row["label"] == "bench:x"
        assert row["cache"] == "4KB/32B 2-way"
        assert row["wall_seconds"] == 2.0  # summed from phases
        assert row["counters"] == {"cme.points.classified": 100}
        assert len(row["run_id"]) == 12
        assert len(row["fingerprint"]) == 16
        assert row["peak_rss_bytes"] >= 0

    def test_defaults_pull_from_live_observability(self):
        obs.enable()
        obs.reset()
        with obs.span("phase_a"):
            obs.counter("some.counter").inc(7)
        row = build_row("run")
        assert "phase_a" in row["phases"]
        assert row["counters"]["some.counter"] == 7
        assert row["wall_seconds"] == sum(row["phases"].values())

    def test_derived_ratios(self):
        row = build_row(
            "run",
            phases={},
            wall_seconds=2.0,
            counters={
                "memo.hits": 3,
                "memo.misses": 1,
                "cme.points.classified": 500,
            },
        )
        assert row["derived"]["memo.hit_ratio"] == 0.75
        assert row["derived"]["points_per_second"] == 250.0

    def test_string_cache_passes_through(self):
        row = build_row("run", cache="4:32:2", phases={}, counters={})
        assert row["cache"] == "4:32:2"


class TestRowKey:
    def base(self, **overrides):
        row = {
            "label": "analyze:hydro",
            "program": "hydro",
            "cache": "4KB/32B 2-way",
            "config": {"jobs": 2, "method": "estimate"},
        }
        row.update(overrides)
        return row

    def test_key_ignores_timing_fields(self):
        a = self.base()
        b = dict(self.base(), wall_seconds=9.9, run_id="abc", ts=123)
        assert row_key(a) == row_key(b)

    def test_key_changes_with_config(self):
        assert row_key(self.base()) != row_key(
            self.base(config={"jobs": 4, "method": "estimate"})
        )

    def test_key_changes_with_cache(self):
        assert row_key(self.base()) != row_key(self.base(cache="8KB/32B 2-way"))

    def test_key_is_short_hex(self):
        key = row_key(self.base())
        assert len(key) == 12
        int(key, 16)


class TestLedgerIO:
    def test_append_and_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        r1 = build_row("a", phases={"p": 1.0}, counters={})
        r2 = build_row("b", phases={"p": 2.0}, counters={})
        append_row(path, r1)
        append_row(path, r2)
        rows = read_ledger(path)
        assert [r["label"] for r in rows] == ["a", "b"]
        assert rows[0]["run_id"] == r1["run_id"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_ledger(str(tmp_path / "absent.jsonl")) == []

    def test_append_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "down" / "ledger.jsonl")
        append_row(path, build_row("a", phases={}, counters={}))
        assert len(read_ledger(path)) == 1

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        append_row(path, build_row("a", phases={"p": 1.0}, counters={}))
        with open(path, "a") as fh:
            fh.write('{"schema": "repro.ledger/v1", "label": "tor')
        rows = read_ledger(path)
        assert [r["label"] for r in rows] == ["a"]

    def test_blank_lines_and_foreign_schemas_skipped(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with open(path, "w") as fh:
            fh.write("\n")
            fh.write(json.dumps({"schema": "other/v1", "label": "x"}) + "\n")
            fh.write(json.dumps([1, 2, 3]) + "\n")
        append_row(path, build_row("keep", phases={}, counters={}))
        rows = read_ledger(path)
        assert [r["label"] for r in rows] == ["keep"]

    def test_by_key_groups_in_order(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        for wall in (1.0, 2.0):
            append_row(
                path,
                build_row("a", phases={}, wall_seconds=wall, counters={}),
            )
        append_row(path, build_row("b", phases={}, counters={}))
        groups = by_key(read_ledger(path))
        assert len(groups) == 2
        (a_rows,) = [
            rows for rows in groups.values() if rows[0]["label"] == "a"
        ]
        assert [r["wall_seconds"] for r in a_rows] == [1.0, 2.0]
