"""Cross-process span/metrics merging under adverse conditions.

The parallel engine's contract is *graceful degradation, identical
results*: empty worker snapshots merge as no-ops, partial snapshots merge
what they carry, and a worker killed outright (OOM killer, crash) triggers
a serial re-solve that reproduces the exact report the healthy pool would
have produced.
"""

import os
import signal
import time

import pytest

from repro import CacheConfig, analyze, obs, prepare
from repro.kernels import build_hydro
from repro.parallel.engine import ParallelEngine


@pytest.fixture(scope="module")
def prepared():
    return prepare(build_hydro(16, 16))


@pytest.fixture(scope="module")
def cache():
    return CacheConfig.kb(2, 32, 2)


class TestSnapshotMergeEdgeCases:
    def test_zero_span_worker_snapshot_is_a_noop(self):
        obs.enable()
        obs.counter("pre.existing").inc(3)
        obs.merge_snapshot(
            {
                "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
                "spans": [],
                "timeline": [],
            }
        )
        snap = obs.snapshot()
        assert snap["counters"] == {"pre.existing": 3}
        assert snap["spans"] == []

    def test_partial_snapshot_metrics_only(self):
        obs.enable()
        obs.merge_snapshot({"metrics": {"counters": {"w.x": 2}}})
        assert obs.snapshot()["counters"]["w.x"] == 2

    def test_partial_snapshot_spans_only(self):
        obs.enable()
        obs.merge_snapshot(
            {"spans": [{"name": "w/span", "count": 1, "seconds": 0.5,
                        "children": []}]}
        )
        spans = {s["name"] for s in obs.snapshot()["spans"]}
        assert "w/span" in spans

    def test_timeline_events_dropped_when_no_recorder(self):
        obs.enable()  # metrics on, timeline NOT enabled
        obs.merge_snapshot(
            {"timeline": [{"name": "w", "start": 0.0, "dur": 1.0,
                           "pid": 1, "tid": 1}]}
        )
        assert obs.timeline_events() == []

    def test_timeline_events_folded_when_recorder_active(self):
        obs.enable_timeline()
        obs.merge_snapshot(
            {"timeline": [{"name": "w", "start": 0.0, "dur": 1.0,
                           "pid": 1, "tid": 1}]}
        )
        events = obs.timeline_events()
        assert [e["name"] for e in events] == ["w"]
        assert events[0]["pid"] == 1  # worker pid preserved

    def test_merge_nests_under_open_span(self):
        obs.enable()
        with obs.span("parent"):
            obs.merge_snapshot(
                {"spans": [{"name": "child", "count": 2, "seconds": 0.1,
                            "children": []}]}
            )
        (parent,) = [
            s for s in obs.snapshot()["spans"] if s["name"] == "parent"
        ]
        children = {c["name"]: c for c in parent["children"]}
        assert children["child"]["count"] == 2


class TestWorkerDeath:
    def _kill_all_workers(self, engine):
        procs = list(engine._pool._processes.values())
        assert procs, "pool has no workers to kill"
        for proc in procs:
            os.kill(proc.pid, signal.SIGKILL)
        # Give the executor's management thread a moment to notice.
        deadline = time.time() + 5.0
        while any(p.is_alive() for p in procs) and time.time() < deadline:
            time.sleep(0.01)

    def test_killed_worker_falls_back_to_identical_serial_report(
        self, prepared, cache
    ):
        serial = analyze(prepared, cache, seed=0)
        obs.enable()
        with ParallelEngine(
            prepared.nprog,
            prepared.layout,
            cache,
            prepared.reuse_table(cache.line_bytes),
            jobs=2,
        ) as engine:
            healthy = engine.estimate(seed=0)
            assert healthy == serial
            self._kill_all_workers(engine)
            recovered = engine.estimate(seed=0)
        assert recovered == serial
        counters = obs.snapshot()["counters"]
        assert counters["parallel.pool_broken"] == 1

    def test_pool_reusable_after_recovery(self, prepared, cache):
        obs.enable()
        with ParallelEngine(
            prepared.nprog,
            prepared.layout,
            cache,
            prepared.reuse_table(cache.line_bytes),
            jobs=2,
        ) as engine:
            first = engine.estimate(seed=0)
            self._kill_all_workers(engine)
            engine.estimate(seed=0)  # recovers serially, closes the pool
            again = engine.estimate(seed=0)  # fresh pool, parallel again
        assert again == first
