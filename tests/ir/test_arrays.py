"""Unit tests for arrays, views and scalars."""

import pytest

from repro.errors import LayoutError
from repro.ir import Array, ArrayView, Ref, Scalar
from repro.polyhedra import Var


class TestArray:
    def test_strides_column_major(self):
        a = Array("A", (10, 20, 5))
        assert a.strides() == (1, 10, 200)

    def test_known_elements(self):
        assert Array("A", (4, 5)).known_elements() == 20

    def test_assumed_size_last_dimension(self):
        a = Array("S", (10, 10, None))
        assert a.known_elements() is None
        assert a.strides() == (1, 10, 100)

    def test_assumed_size_only_last(self):
        with pytest.raises(LayoutError):
            Array("S", (None, 10))

    def test_zero_dimensions_rejected(self):
        with pytest.raises(LayoutError):
            Array("A", ())

    def test_negative_extent_rejected(self):
        with pytest.raises(LayoutError):
            Array("A", (-3,))

    def test_element_offset_1d(self):
        a = Array("A", (10,))
        off = a.element_offset([Var("I1") + 1])
        assert off == Var("I1")  # (I1 + 1 - 1) * 1

    def test_element_offset_2d_column_major(self):
        b = Array("B", (10, 10))
        off = b.element_offset([Var("I2"), Var("I1")])
        # (I2 - 1) + (I1 - 1) * 10
        assert off == Var("I2") + 10 * Var("I1") - 11

    def test_element_offset_wrong_arity(self):
        with pytest.raises(LayoutError):
            Array("A", (10,)).element_offset([Var("x"), Var("y")])

    def test_storage_is_self(self):
        a = Array("A", (4,))
        assert a.storage() is a

    def test_getitem_builds_read_ref(self):
        a = Array("A", (10,))
        ref = a[Var("I1")]
        assert isinstance(ref, Ref)
        assert not ref.is_write
        assert ref.array is a


class TestArrayView:
    def test_view_shares_storage(self):
        b = Array("B", (20, 20))
        v = ArrayView("B1", b, (10, 10, None))
        assert v.storage() is b

    def test_nested_views_resolve_to_root(self):
        b = Array("B", (20, 20))
        v1 = ArrayView("B1", b, (400,))
        v2 = ArrayView("B2", v1, (100, 4))
        assert v2.storage() is b

    def test_view_has_own_strides(self):
        b = Array("B", (20, 20))
        v = ArrayView("B2", b, (100, 4))
        assert v.strides() == (1, 100)

    def test_view_inherits_element_size(self):
        b = Array("B", (20, 20), element_size=4)
        v = ArrayView("B1", b, (400,))
        assert v.element_size == 4


class TestScalar:
    def test_register_allocated_by_default(self):
        s = Scalar("X")
        assert not s.in_memory
        with pytest.raises(LayoutError):
            s.backing_array()

    def test_memory_scalar_has_backing_array(self):
        s = Scalar("X", in_memory=True)
        backing = s.backing_array()
        assert backing.dims == (1,)
        assert s.backing_array() is backing  # stable identity
