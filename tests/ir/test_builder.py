"""Unit tests for the program builder DSL and IR nodes."""

import pytest

from repro.errors import ReproError
from repro.ir import (
    ActualArray,
    ActualElement,
    ActualExpr,
    ActualScalar,
    Call,
    If,
    Loop,
    ProgramBuilder,
    Statement,
    calls_of,
    program_stats,
    print_program,
    statements_of,
)
from repro.polyhedra import Var

from tests.fixtures import figure1_program


class TestBuilder:
    def test_figure1_structure(self):
        prog, a, b = figure1_program(10)
        main = prog.main
        assert len(main.body) == 2
        outer1, outer2 = main.body
        assert isinstance(outer1, Loop) and outer1.var == "I1"
        # S1, loop, loop, S4 inside the first outer loop
        kinds = [type(x).__name__ for x in outer1.body]
        assert kinds == ["Statement", "Loop", "Loop", "Statement"]
        assert isinstance(outer2, Loop)

    def test_statement_access_order_reads_then_write(self):
        prog, a, b = figure1_program(10)
        s2 = next(s for s in statements_of(prog.main.body) if s.label == "S2")
        assert [r.is_write for r in s2.refs] == [False, True]
        assert s2.refs[0].array is a
        assert s2.refs[1].array is b

    def test_statement_outside_subroutine_rejected(self):
        pb = ProgramBuilder("P")
        arr_holder = {}
        with pb.subroutine("MAIN"):
            arr_holder["a"] = pb.array("A", (5,))
        with pytest.raises(ReproError):
            pb.assign(arr_holder["a"][1])

    def test_nested_subroutines_rejected(self):
        pb = ProgramBuilder("P")
        with pb.subroutine("MAIN"):
            with pytest.raises(ReproError):
                with pb.subroutine("INNER"):
                    pass

    def test_if_guard(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (10,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 10) as i:
                with pb.if_(i.eq(5)):
                    pb.assign(a[i])
        main = pb.build().main
        loop = main.body[0]
        assert isinstance(loop.body[0], If)
        assert loop.body[0].guard.satisfied({"I": 5})
        assert not loop.body[0].guard.satisfied({"I": 4})

    def test_loop_step(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (100,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 99, step=2) as i:
                pb.assign(a[i])
        loop = pb.build().main.body[0]
        assert loop.step == 2

    def test_call_actual_classification(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (10, 10))
        x = pb.scalar("X")
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 10) as i:
                pb.call("F", x, a, a[i, 1], "I*I")
        call = next(calls_of(pb.build().main.body))
        kinds = [type(act) for act in call.actuals]
        assert kinds == [ActualScalar, ActualArray, ActualElement, ActualExpr]

    def test_auto_labels_are_unique(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (10,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 10) as i:
                s1 = pb.assign(a[i])
                s2 = pb.assign(a[i])
        assert s1.label != s2.label


class TestStatsAndPrinter:
    def test_figure1_stats(self):
        prog, _, _ = figure1_program(10)
        stats = program_stats(prog)
        assert stats.subroutines == 1
        assert stats.call_statements == 0
        # S1: 1 ref, S2: 2 refs, S3: 1 ref, S4: 1 ref, S5: 1 ref
        assert stats.references == 6
        assert stats.lines > 5

    def test_printer_contains_loops_and_statements(self):
        prog, _, _ = figure1_program(10)
        text = print_program(prog)
        assert "DO I1 = 2, 10" in text
        assert "ENDDO" in text
        assert "B(I2-1, I1)" in text.replace(" ", "").replace("B(I2-1,I1)", "B(I2-1, I1)") or "B(" in text

    def test_printer_counts_calls(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (5,))
        with pb.subroutine("MAIN"):
            pb.call("G", a)
        with pb.subroutine("G"):
            pass
        stats = program_stats(pb.build())
        assert stats.call_statements == 1
        assert stats.subroutines == 2

    def test_ref_repr_roundtrip_info(self):
        prog, a, _ = figure1_program(10)
        s1 = next(s for s in statements_of(prog.main.body) if s.label == "S1")
        assert "A(" in repr(s1.refs[0])


class TestNodeHelpers:
    def test_statement_substitute(self):
        prog, a, b = figure1_program(10)
        s2 = next(s for s in statements_of(prog.main.body) if s.label == "S2")
        s2b = s2.substitute({"I2": Var("I2") + 1})
        assert s2b.refs[0].subscripts[0] == Var("I2")  # (I2+1) - 1

    def test_statement_rename(self):
        prog, a, b = figure1_program(10)
        s3 = next(s for s in statements_of(prog.main.body) if s.label == "S3")
        s3b = s3.rename({"I2": "J"})
        assert s3b.refs[0].subscripts[0] == Var("J")

    def test_assign_factory_marks_write_last(self):
        prog, a, b = figure1_program(10)
        stmt = Statement.assign(b[1, 1], [a[1]])
        assert stmt.refs[-1].is_write
        assert not stmt.refs[0].is_write

    def test_call_repr(self):
        c = Call("F", [])
        assert "CALL F" in repr(c)
