"""Unit tests for the cache configuration and memory layout."""

import pytest

from repro.errors import LayoutError
from repro.ir import Array, ArrayView
from repro.layout import CacheConfig, MemoryLayout, layout_for_refs


class TestCacheConfig:
    def test_paper_default_32kb_32b(self):
        c = CacheConfig.kb(32, 32, 1)
        assert c.num_lines == 1024
        assert c.num_sets == 1024
        assert c.line_elements(8) == 4  # Ls = 4 REAL*8 elements

    def test_associativity_reduces_sets(self):
        assert CacheConfig.kb(32, 32, 2).num_sets == 512
        assert CacheConfig.kb(32, 32, 4).num_sets == 256

    def test_memory_line_and_set(self):
        c = CacheConfig.kb(1, 32, 1)  # 32 sets
        assert c.memory_line(0) == 0
        assert c.memory_line(31) == 0
        assert c.memory_line(32) == 1
        assert c.set_of_line(33) == 1
        assert c.set_of_address(32 * 33) == 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(100, 32, 1)
        with pytest.raises(ValueError):
            CacheConfig(0, 32, 1)

    def test_describe(self):
        assert CacheConfig.kb(32, 32, 1).describe() == "32KB/32B direct"
        assert "2-way" in CacheConfig.kb(32, 32, 2).describe()


class TestMemoryLayout:
    def test_sequential_placement(self):
        a = Array("A", (10,))  # 80 bytes
        b = Array("B", (5, 5))  # 200 bytes
        layout = MemoryLayout([a, b])
        assert layout.base_of(a) == 0
        assert layout.base_of(b) == 80
        assert layout.total_bytes == 280

    def test_alignment(self):
        a = Array("A", (3,), element_size=4)  # 12 bytes
        b = Array("B", (3,), element_size=4)
        layout = MemoryLayout([a, b], align=32)
        assert layout.base_of(a) == 0
        assert layout.base_of(b) == 32

    def test_base_offset(self):
        a = Array("A", (4,))
        layout = MemoryLayout([a], base=1000, align=1)
        assert layout.base_of(a) == 1000

    def test_uniform_padding(self):
        a = Array("A", (4,))
        b = Array("B", (4,))
        layout = MemoryLayout([a, b], pad_bytes=16, align=1)
        assert layout.base_of(b) == 32 + 16

    def test_per_array_padding(self):
        a = Array("A", (4,))
        b = Array("B", (4,))
        layout = MemoryLayout([a, b], pad_bytes={"A": 8}, align=1)
        assert layout.base_of(b) == 40

    def test_view_resolves_to_root_base(self):
        b = Array("B", (20, 20))
        v = ArrayView("B1", b, (10, 10, None))
        layout = MemoryLayout([b])
        assert layout.base_of(v) == layout.base_of(b)  # @B = @B1 (Fig. 5)

    def test_view_cannot_be_laid_out(self):
        b = Array("B", (4,))
        v = ArrayView("V", b, (4,))
        with pytest.raises(LayoutError):
            MemoryLayout([v])

    def test_assumed_size_root_rejected(self):
        s = Array("S", (10, None))
        with pytest.raises(LayoutError):
            MemoryLayout([s])

    def test_duplicate_names_rejected(self):
        with pytest.raises(LayoutError):
            MemoryLayout([Array("A", (4,)), Array("A", (4,))])

    def test_unknown_array_raises(self):
        layout = MemoryLayout([Array("A", (4,))])
        with pytest.raises(LayoutError):
            layout.base_of(Array("Z", (4,)))

    def test_contains(self):
        a = Array("A", (4,))
        layout = MemoryLayout([a])
        assert a in layout
        assert Array("Z", (4,)) not in layout

    def test_layout_for_refs_declaration_order_first(self):
        a = Array("A", (4,))
        b = Array("B", (4,))
        refs = [b[1], a[1]]
        layout = layout_for_refs(refs, declared_order=[a, b], align=1)
        assert layout.base_of(a) < layout.base_of(b)

    def test_layout_for_refs_discovers_undeclared(self):
        a = Array("A", (4,))
        b = Array("B", (4,))
        layout = layout_for_refs([a[1], b[2]], align=1)
        assert b in layout
