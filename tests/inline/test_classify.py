"""Classification of actual parameters (Table 2 rules), on the Fig. 5 program."""

import pytest

from repro.errors import NonAnalysableCallError, RecursionError_, UnknownSubroutineError
from repro.ir import ProgramBuilder, calls_of
from repro.inline import (
    N_ABLE,
    P_ABLE,
    R_ABLE,
    build_call_tree,
    classify_call,
    classify_program,
    frame_words,
    max_stack_words,
)


def figure5_program():
    """The caller and two subroutines of Fig. 5 (loop bounds made concrete)."""
    pb = ProgramBuilder("FIG5")
    a = pb.array("A", (10, 10))
    b = pb.array("B", (20, 20))
    x = pb.scalar("X")
    with pb.subroutine("MAIN"):
        with pb.do("I1", 1, 5) as i1:
            with pb.do("I2", 1, 5) as i2:
                pb.assign(a[i1, i2])
                pb.call("F", x, a, b, b[i1, i2])
                pb.call("G", a[i1, i2], a[1, i2], b)
    with pb.subroutine("F") as f:
        y = f.scalar_formal("Y")
        c = f.array_formal("C", (10, 10))
        d = f.array_formal("D", (400,))
        s = f.array_formal("S", (10, 10, None))
        with pb.do("I3", 1, 3) as i3:
            with pb.do("I4", 2, 4) as i4:
                pb.assign(c[i3, i4 - 1], d[i3 - 1 + 20 * (i4 - 1)])
                pb.assign(s[i3, i4, 2])
    with pb.subroutine("G") as g:
        e = g.array_formal("E", (10, 10))
        ff = g.array_formal("F", (10,))
        t = g.array_formal("T", (100, 4))
        with pb.do("I3", 1, 3) as i3:
            with pb.do("I4", 1, 3) as i4:
                pb.assign(e[i3, i4], ff[i4], t[i3, i4])
    return pb.build()


class TestFigure5Classification:
    def test_call_f_actuals(self):
        prog = figure5_program()
        call_f = next(c for c in calls_of(prog.main.body) if c.callee == "F")
        cc = classify_call(call_f, prog.subroutine("F"))
        # X scalar -> P; A matches C's shape -> P; B vs 1-D D -> P;
        # B(I1,I2) vs 3-D assumed-size S -> R (renamed to B1 in the paper).
        assert cc.per_actual == [P_ABLE, P_ABLE, P_ABLE, R_ABLE]
        assert cc.analysable

    def test_call_g_actuals(self):
        prog = figure5_program()
        call_g = next(c for c in calls_of(prog.main.body) if c.callee == "G")
        cc = classify_call(call_g, prog.subroutine("G"))
        # A(I1,I2) matches E -> P; A(1,I2) vs 1-D F -> P;
        # B(20,20) vs T(100,4) -> dimension sizes differ -> R (B2).
        assert cc.per_actual == [P_ABLE, P_ABLE, R_ABLE]

    def test_program_stats_row(self):
        stats = classify_program(figure5_program())
        assert stats.calls_total == 2
        assert stats.calls_analysable == 2
        assert stats.p_able == 5
        assert stats.r_able == 2
        assert stats.n_able == 0
        assert stats.actuals_total == 7

    def test_expression_actual_is_n_able(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (10,))
        with pb.subroutine("MAIN"):
            pb.call("F", "A(IDX(I))")  # indirection: non-analysable
        with pb.subroutine("F") as f:
            f.array_formal("C", (10,))
        prog = pb.build()
        call = next(calls_of(prog.main.body))
        cc = classify_call(call, prog.subroutine("F"))
        assert cc.per_actual == [N_ABLE]
        assert not cc.analysable

    def test_scalar_actual_for_array_formal_is_n_able(self):
        pb = ProgramBuilder("P")
        x = pb.scalar("X")
        with pb.subroutine("MAIN"):
            pb.call("F", x)
        with pb.subroutine("F") as f:
            f.array_formal("C", (10,))
        prog = pb.build()
        cc = classify_call(next(calls_of(prog.main.body)), prog.subroutine("F"))
        assert cc.per_actual == [N_ABLE]

    def test_arity_mismatch_is_n_able(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (10,))
        with pb.subroutine("MAIN"):
            pb.call("F", a, a)
        with pb.subroutine("F") as f:
            f.array_formal("C", (10,))
        prog = pb.build()
        cc = classify_call(next(calls_of(prog.main.body)), prog.subroutine("F"))
        assert not cc.analysable


class TestCallTree:
    def _nested_program(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (10,))
        with pb.subroutine("MAIN"):
            pb.call("OUTER", a)
        with pb.subroutine("OUTER") as o:
            c = o.array_formal("C", (10,))
            pb.call("INNER", c)
            pb.call("INNER", c)
        with pb.subroutine("INNER") as i:
            i.array_formal("D", (10,))
        return pb.build()

    def test_tree_shape(self):
        root = build_call_tree(self._nested_program())
        assert root.subroutine == "MAIN"
        assert [c.subroutine for c in root.children] == ["OUTER"]
        outer = root.children[0]
        assert [c.subroutine for c in outer.children] == ["INNER", "INNER"]

    def test_bp_offsets(self):
        root = build_call_tree(self._nested_program())
        outer = root.children[0]
        # MAIN's frame is 1 word (no call for the root); OUTER's call has
        # 1 actual -> frame 2.
        assert outer.bp == 1
        assert all(child.bp == outer.bp + frame_words(outer.call) for child in outer.children)

    def test_stack_sizing(self):
        root = build_call_tree(self._nested_program())
        assert max_stack_words(root) == 1 + 2 + 2

    def test_recursion_detected(self):
        pb = ProgramBuilder("P")
        with pb.subroutine("MAIN"):
            pb.call("F")
        with pb.subroutine("F"):
            pb.call("F")
        with pytest.raises(RecursionError_):
            build_call_tree(pb.build())

    def test_mutual_recursion_detected(self):
        pb = ProgramBuilder("P")
        with pb.subroutine("MAIN"):
            pb.call("F")
        with pb.subroutine("F"):
            pb.call("G")
        with pb.subroutine("G"):
            pb.call("F")
        with pytest.raises(RecursionError_):
            build_call_tree(pb.build())

    def test_unknown_callee(self):
        pb = ProgramBuilder("P")
        with pb.subroutine("MAIN"):
            pb.call("MISSING")
        with pytest.raises(UnknownSubroutineError):
            build_call_tree(pb.build())
