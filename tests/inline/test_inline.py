"""Abstract inlining tests: Fig. 5 semantics and end-to-end analysability."""

import pytest

from repro.errors import NonAnalysableCallError
from repro.ir import Call, ProgramBuilder, statements_of, walk_nodes
from repro.inline import inline_program
from repro.layout import CacheConfig, layout_for_refs
from repro.normalize import normalize
from repro.cme import find_misses
from repro.sim import collect_walker_trace, simulate
from repro.iteration import Walker

from tests.inline.test_classify import figure5_program


def flat_has_no_calls(flat):
    return not any(isinstance(n, Call) for n in walk_nodes(flat.body))


class TestFigure5Inlining:
    def test_flat_body_is_call_free(self):
        result = inline_program(figure5_program())
        assert flat_has_no_calls(result.flat)
        assert result.inlined_instances == 2
        assert result.fully_analysable

    def test_views_share_base_with_b(self):
        """Fig. 5: after inlining, @B = @B1 = @B2."""
        prog = figure5_program()
        result = inline_program(prog)
        b = next(a for a in prog.global_arrays if a.name == "B")
        b_views = [v for v in result.views if v.storage() is b]
        # the linearised D view plus the renamed S (B1) and T (B2) views
        assert len(b_views) == 3
        nprog = normalize(result.flat)
        layout = layout_for_refs(nprog.refs, declared_order=prog.global_arrays)
        for v in b_views:
            assert layout.base_of(v) == layout.base_of(b)

    def test_same_shape_propagation_keeps_array_identity(self):
        """E(I3,I4) with actual A(I1,I2) becomes A(I1+I3-1, I2+I4-1)."""
        prog = figure5_program()
        result = inline_program(prog)
        nprog = normalize(result.flat)
        a = next(arr for arr in prog.global_arrays if arr.name == "A")
        a_refs = [r for r in nprog.refs if r.array is a]
        # The propagated E reference keeps A's identity with shifted subscripts.
        shifted = [
            r
            for r in a_refs
            if any(len(s.variables()) == 2 for s in r.subscripts)
        ]
        assert shifted, "expected A references combining caller and callee indices"

    def test_renamed_s_reference_address_exact(self):
        """S(I3,I4,2) must address B storage at the mathematically exact spot."""
        prog = figure5_program()
        result = inline_program(prog)
        nprog = normalize(result.flat)
        layout = layout_for_refs(nprog.refs, declared_order=prog.global_arrays)
        walker = Walker(nprog, layout)
        b = next(a for a in prog.global_arrays if a.name == "B")
        b_base = layout.base_of(b)
        # Find the 3-D view reference (the renamed S).
        s_refs = [r for r in nprog.refs if r.array.ndim == 3]
        assert s_refs
        ref = s_refs[0]
        # Pick caller point I1=2, I2=3 and callee point I3=1, I4=2.  The
        # normalised index order is the nesting order (I1, I2, I3, I4).
        idx = (2, 3, 1, 2)
        got = walker.address_of(ref, idx)
        i1, i2, i3, i4 = idx
        base_elem = (i1 - 1) + 20 * (i2 - 1)  # B(I1, I2) within B(20,20)
        s_elem = (i3 - 1) + 10 * (i4 - 1) + 100 * (2 - 1)  # S strides (1,10,100)
        assert got == b_base + 8 * (base_elem + s_elem)

    def test_linearised_d_reference_address_exact(self):
        """D(I3-1+20*(I4-1)) over actual B reads B's storage linearly."""
        prog = figure5_program()
        result = inline_program(prog)
        nprog = normalize(result.flat)
        layout = layout_for_refs(nprog.refs, declared_order=prog.global_arrays)
        walker = Walker(nprog, layout)
        b = next(a for a in prog.global_arrays if a.name == "B")
        d_refs = [
            r
            for r in nprog.refs
            if r.array.ndim == 1 and r.array.storage() is b
        ]
        assert d_refs
        ref = d_refs[0]
        idx = (1, 1, 2, 3)  # I3=2, I4=3
        got = walker.address_of(ref, idx)
        subscript = 2 - 1 + 20 * (3 - 1)  # D's 1-based linear subscript (41)
        assert got == layout.base_of(b) + 8 * (subscript - 1)


class TestInliningMechanics:
    def test_loop_variable_freshness_across_instances(self):
        """Two inlined instances of the same callee must not share loop vars."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (10,))
        b = pb.array("B", (10,))
        with pb.subroutine("MAIN"):
            pb.call("F", a)
            pb.call("F", b)
        with pb.subroutine("F") as f:
            c = f.array_formal("C", (10,))
            with pb.do("I", 1, 10) as i:
                pb.assign(c[i])
        result = inline_program(pb.build())
        nprog = normalize(result.flat)
        assert len(nprog.leaves) == 2
        # Both normalise cleanly to depth 1 with disjoint nests.
        assert nprog.depth == 1
        assert len(nprog.roots) == 2

    def test_nested_calls_compose_bindings(self):
        """MAIN passes A to OUTER; OUTER passes its formal on to INNER."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (10, 10))
        with pb.subroutine("MAIN"):
            pb.call("OUTER", a)
        with pb.subroutine("OUTER") as o:
            c = o.array_formal("C", (10, 10))
            pb.call("INNER", c)
        with pb.subroutine("INNER") as i:
            d = i.array_formal("D", (10, 10))
            with pb.do("I", 1, 10) as iv:
                pb.assign(d[iv, 1])
        result = inline_program(pb.build())
        nprog = normalize(result.flat)
        assert nprog.refs[0].array is a  # propagated through two levels

    def test_element_actual_offsets_compose(self):
        """MAIN passes A(3,4); callee writes C(2,2) -> A(4,5)."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (10, 10))
        with pb.subroutine("MAIN"):
            pb.call("F", a[3, 4])
        with pb.subroutine("F") as f:
            c = f.array_formal("C", (10, 10))
            pb.assign(c[2, 2])
        result = inline_program(pb.build())
        nprog = normalize(result.flat)
        ref = nprog.refs[0]
        assert ref.array is a
        env = {v: 1 for v in nprog.index_vars}
        assert [s.evaluate(env) for s in ref.subscripts] == [4, 5]

    def test_call_inside_loop_offsets_vary(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (10, 10))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 10) as i:
                pb.call("F", a[i, 1])
        with pb.subroutine("F") as f:
            c = f.array_formal("C", (10, 10))
            pb.assign(c[1, 2])
        result = inline_program(pb.build())
        nprog = normalize(result.flat)
        ref = nprog.refs[0]
        # C(1,2) with base A(I,1) -> A(I, 2)
        env = dict(zip(nprog.index_vars, [7] * nprog.depth))
        assert ref.subscripts[0].evaluate(env) == 7
        assert ref.subscripts[1].evaluate(env) == 2

    def test_non_analysable_raise(self):
        pb = ProgramBuilder("P")
        with pb.subroutine("MAIN"):
            pb.call("F", "X+Y")
        with pb.subroutine("F") as f:
            f.array_formal("C", (10,))
        with pytest.raises(NonAnalysableCallError):
            inline_program(pb.build())

    def test_non_analysable_drop(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (10,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 10) as i:
                pb.assign(a[i])
            pb.call("F", "X+Y")
        with pb.subroutine("F") as f:
            f.array_formal("C", (10,))
        result = inline_program(pb.build(), on_non_analysable="drop")
        assert result.dropped_calls == 1
        assert not result.fully_analysable
        assert flat_has_no_calls(result.flat)

    def test_parameterless_calls(self):
        """Swim-style: parameterless calls on global arrays."""
        pb = ProgramBuilder("P")
        u = pb.array("U", (16,))
        with pb.subroutine("MAIN"):
            with pb.do("T", 1, 2):
                pb.call("CALC")
        with pb.subroutine("CALC"):
            with pb.do("I", 1, 16) as i:
                pb.assign(u[i])
        result = inline_program(pb.build())
        nprog = normalize(result.flat)
        assert nprog.depth == 2
        assert nprog.refs[0].array is u


class TestInlinedAnalysis:
    def test_find_misses_exact_through_calls(self):
        """Reuse across a call boundary (propagation) is exploited exactly."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (64,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 64) as i:
                pb.assign(a[i])
            pb.call("SWEEP", a)
        with pb.subroutine("SWEEP") as s:
            c = s.array_formal("C", (64,))
            with pb.do("I", 1, 64) as i:
                pb.read(c[i])
        result = inline_program(pb.build())
        nprog = normalize(result.flat)
        layout = layout_for_refs(nprog.refs, align=32)
        cache = CacheConfig.kb(32, 32, 1)
        analytic = find_misses(nprog, layout, cache)
        simulated = simulate(nprog, layout, cache)
        assert analytic.total_misses == simulated.total_misses == 16

    def test_inlined_trace_equals_hand_inlined_trace(self):
        """The abstractly inlined program accesses the same addresses, in the
        same order, as the manually inlined equivalent."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (8, 8))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 4) as i:
                pb.call("F", a[i, i])
        with pb.subroutine("F") as f:
            c = f.array_formal("C", (8, 8))
            with pb.do("J", 1, 2) as j:
                pb.assign(c[j, 1])
        result = inline_program(pb.build())
        nprog = normalize(result.flat)
        layout = layout_for_refs(nprog.refs, align=32)
        trace = [addr for _, addr in _trace(nprog, layout)]

        pb2 = ProgramBuilder("HAND")
        a2 = pb2.array("A", (8, 8))
        with pb2.subroutine("MAIN"):
            with pb2.do("I", 1, 4) as i:
                with pb2.do("J", 1, 2) as j:
                    pb2.assign(a2[j + i - 1, i])
        nprog2 = normalize(pb2.build().main)
        layout2 = layout_for_refs(nprog2.refs, align=32)
        trace2 = [addr for _, addr in _trace(nprog2, layout2)]
        assert trace == trace2


def _trace(nprog, layout):
    return collect_walker_trace(Walker(nprog, layout))


class TestStackModel:
    def test_stack_accesses_present(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (8,))
        with pb.subroutine("MAIN"):
            pb.call("F", a)
        with pb.subroutine("F") as f:
            c = f.array_formal("C", (8,))
            with pb.do("I", 1, 8) as i:
                pb.assign(c[i])
        result = inline_program(pb.build(), model_stack=True)
        assert result.stack_array is not None
        assert result.stack_array.element_size == 4  # 32-bit words (Fig. 4)
        stack_stmts = [
            s
            for s in statements_of(result.flat.body)
            if s.refs and s.refs[0].array.name == "STACK"
        ]
        assert len(stack_stmts) == 3  # push frame, read args, pop return

    def test_stack_sized_for_deepest_chain(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (8,))
        with pb.subroutine("MAIN"):
            pb.call("F", a)
        with pb.subroutine("F") as f:
            c = f.array_formal("C", (8,))
            pb.call("G", c, c)
        with pb.subroutine("G") as g:
            g.array_formal("D", (8,))
            g.array_formal("E", (8,))
        result = inline_program(pb.build(), model_stack=True)
        # MAIN frame 1, F's call frame 2, G's call frame 3.
        assert result.stack_array.dims == (6,)

    def test_stack_accesses_simulate(self):
        """The stack stream is analysable and simulable end to end."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (16,))
        with pb.subroutine("MAIN"):
            with pb.do("T", 1, 2):
                pb.call("F", a)
        with pb.subroutine("F") as f:
            c = f.array_formal("C", (16,))
            with pb.do("I", 1, 16) as i:
                pb.assign(c[i])
        result = inline_program(pb.build(), model_stack=True)
        nprog = normalize(result.flat)
        extra = [result.stack_array] if result.stack_array else []
        layout = layout_for_refs(nprog.refs, declared_order=extra, align=32)
        cache = CacheConfig.kb(32, 32, 1)
        analytic = find_misses(nprog, layout, cache)
        simulated = simulate(nprog, layout, cache)
        assert analytic.total_accesses == simulated.total_accesses
        assert analytic.total_misses >= simulated.total_misses
