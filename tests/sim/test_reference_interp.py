"""Normalisation preserves the access trace — checked against an
independent interpreter that executes the *raw* IR directly."""

import pytest

from repro.errors import NonAnalysableError
from repro.ir import ProgramBuilder
from repro.iteration import Walker
from repro.layout import layout_for_refs
from repro.normalize import normalize
from repro.sim import collect_walker_trace, reference_trace

from tests.fixtures import figure1_program


def traces_for(prog):
    nprog = normalize(prog.main)
    layout = layout_for_refs(nprog.refs, declared_order=prog.global_arrays)
    normalised = [a for _, a in collect_walker_trace(Walker(nprog, layout))]
    raw = reference_trace(prog.main, layout)
    return raw, normalised


class TestTracePreservation:
    def test_figure1_program(self):
        prog, _, _ = figure1_program(9)
        raw, normalised = traces_for(prog)
        assert raw == normalised

    def test_strided_loop(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (100,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 3, 97, step=7) as i:
                pb.assign(a[i])
        raw, normalised = traces_for(pb.build())
        assert raw == normalised
        assert len(raw) == len(range(3, 98, 7))

    def test_negative_stride_loop(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (30,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 30, 1, step=-3) as i:
                pb.assign(a[i])
        raw, normalised = traces_for(pb.build())
        assert raw == normalised

    def test_guarded_statements(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (20,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 20) as i:
                with pb.if_(i.ge(5), i.le(15)):
                    pb.assign(a[i])
        raw, normalised = traces_for(pb.build())
        assert raw == normalised
        assert len(raw) == 11

    def test_statements_between_loops(self):
        """Loop sinking (the delicate rewrite) must not reorder accesses."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (10,))
        b = pb.array("B", (10, 10))
        with pb.subroutine("MAIN"):
            with pb.do("I", 2, 9) as i:
                pb.assign(a[i - 1])
                with pb.do("J", i, 9) as j:
                    pb.assign(b[j, i], a[j])
                with pb.do("J", 1, 9) as j:
                    pb.read(b[j, i])
                pb.read(a[i])
        raw, normalised = traces_for(pb.build())
        assert raw == normalised

    def test_imbalanced_depths(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (8, 8, 8))
        b = pb.array("B", (8,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 8) as i:
                pb.assign(b[i])
                with pb.do("J", 1, 8) as j:
                    with pb.do("K", 1, 8) as k:
                        pb.assign(a[k, j, i])
        raw, normalised = traces_for(pb.build())
        assert raw == normalised

    def test_blocked_loops(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (64,))
        with pb.subroutine("MAIN"):
            with pb.do("I2", 1, 64, step=16) as i2:
                with pb.do("I", i2, i2 + 15) as i:
                    pb.assign(a[i])
        raw, normalised = traces_for(pb.build())
        assert raw == normalised

    def test_call_rejected(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (4,))
        with pb.subroutine("MAIN"):
            pb.call("F", a)
        with pb.subroutine("F") as f:
            f.array_formal("C", (4,))
        layout = layout_for_refs([], declared_order=pb.build().global_arrays)
        with pytest.raises(NonAnalysableError):
            reference_trace(pb.build().main, layout)

    def test_kernels_preserved(self):
        from repro.kernels import build_hydro, build_mmt

        for prog in (build_hydro(8, 8), build_mmt(8, 8, 4)):
            raw, normalised = traces_for(prog)
            assert raw == normalised
