"""Seeded property tests for the replacement-policy framework."""

from __future__ import annotations

import random
import subprocess
import sys

import pytest

from repro import obs
from repro.errors import ReproError
from repro.layout import CacheConfig
from repro.sim import simulate_trace
from repro.sim.cache import SetAssocLRUCache
from repro.sim.policy import (
    DEFAULT_POLICY,
    POLICIES,
    LRUSet,
    PLRUSet,
    PolicyCache,
    make_cache,
    mix_victim,
    resolve_policy,
)


def _stream(seed: int, pages: int = 24, length: int = 600) -> list[int]:
    """A seeded page stream with enough conflict to exercise eviction."""
    rng = random.Random(seed)
    return [rng.randrange(pages) for _ in range(length)]


def _pairs(stream, line=32):
    return [(0, page * line) for page in stream]


class TestResolvePolicy:
    def test_none_and_auto_mean_lru(self):
        assert resolve_policy(None) == DEFAULT_POLICY == "lru"
        assert resolve_policy("auto") == "lru"

    @pytest.mark.parametrize("policy", POLICIES)
    def test_known_names_pass_through(self, policy):
        assert resolve_policy(policy) == policy

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError, match="unknown replacement policy"):
            resolve_policy("mru")

    def test_plru_rejects_non_power_of_two_assoc(self):
        cache = CacheConfig(3 * 32 * 4, 32, 3)
        with pytest.raises(ReproError, match="power-of-two"):
            PolicyCache(cache, "plru")
        # ...but the other policies take the same geometry fine.
        for policy in ("lru", "fifo", "random"):
            assert PolicyCache(cache, policy).access_line(0) is False


class TestMixVictim:
    def test_pure_function_of_its_inputs(self):
        assert mix_victim(7, 3, 11, 8) == mix_victim(7, 3, 11, 8)

    def test_in_range_and_spread(self):
        draws = [mix_victim(1, s, e, 8) for s in range(8) for e in range(64)]
        assert all(0 <= d < 8 for d in draws)
        # splitmix64 over 512 draws should touch every way.
        assert set(draws) == set(range(8))

    def test_seed_changes_the_draw_sequence(self):
        a = [mix_victim(0, 0, e, 8) for e in range(32)]
        b = [mix_victim(1, 0, e, 8) for e in range(32)]
        assert a != b


class TestPolicyCacheLRU:
    def test_bit_identical_to_the_tuned_lru_cache(self):
        cache = CacheConfig.kb(1, 32, 2)
        tuned = SetAssocLRUCache(cache)
        generic = PolicyCache(cache, "lru")
        for line in _stream(5, pages=200, length=2000):
            assert tuned.access_line(line) == generic.access_line(line)
        assert tuned.evictions == generic.evictions

    def test_make_cache_picks_the_tuned_lru(self):
        cache = CacheConfig.kb(1, 32, 2)
        assert isinstance(make_cache(cache, None), SetAssocLRUCache)
        assert isinstance(make_cache(cache, "fifo"), PolicyCache)


class TestPLRU:
    def test_two_way_plru_is_exactly_lru(self):
        plru, lru = PLRUSet(2), LRUSet(2)
        for line in _stream(9, pages=8, length=500):
            assert plru.access(line) == lru.access(line)
        assert plru.evictions == lru.evictions

    def test_pinned_divergence_from_lru_at_four_ways(self):
        # Fill A B C D (ways 0-3), re-touch A, then miss E: true LRU
        # evicts B (oldest untouched), tree-PLRU follows its bits to C.
        A, B, C, D, E = range(5)
        plru, lru = PLRUSet(4), LRUSet(4)
        for m in (plru, lru):
            for line in (A, B, C, D, A, E):
                m.access(line)
        assert lru.access(B) is False  # true LRU evicted B for E
        assert plru.access(B) is True  # tree-PLRU kept B...
        assert plru.access(C) is False  # ...and evicted C instead

    def test_state_round_trip_resumes_identically(self):
        rng = random.Random(13)
        original = PLRUSet(8)
        for line in _stream(13, pages=30, length=300):
            original.access(line)
        resumed = PLRUSet(8)
        resumed.restore(original.state())
        assert resumed.state() == original.state()
        suffix = [rng.randrange(30) for _ in range(300)]
        assert [original.access(l) for l in suffix] == [
            resumed.access(l) for l in suffix
        ]
        assert original.state() == resumed.state()

    def test_restore_rejects_wrong_width_state(self):
        machine = PLRUSet(4)
        with pytest.raises(ReproError, match="ways"):
            machine.restore(((None, None), 0))


class TestRandomDeterminism:
    CACHE = CacheConfig(32 * 4 * 4, 32, 4)  # 4 sets, 4-way

    def test_fixed_seed_reproduces_across_backends_and_runs(self):
        import importlib.util

        backends = ["scalar", "scalar"]
        if importlib.util.find_spec("numpy") is not None:
            backends.insert(1, "numpy")
        pairs = _pairs(_stream(21))
        reports = [
            simulate_trace(
                pairs, self.CACHE, backend=backend, policy="random", seed=4
            )
            for backend in backends
        ]
        for report in reports[1:]:
            assert report.misses == reports[0].misses

    def test_different_seeds_draw_different_victims(self):
        pairs = _pairs(_stream(21))
        totals = {
            simulate_trace(
                pairs, self.CACHE, policy="random", seed=seed
            ).total_misses
            for seed in range(6)
        }
        assert len(totals) > 1

    def test_reproduces_across_processes_and_hash_seeds(self):
        # PYTHONHASHSEED perturbs str/bytes hashing: a victim draw built
        # on hash() would diverge between these two interpreters.
        script = (
            "import random\n"
            "from repro.layout import CacheConfig\n"
            "from repro.sim import simulate_trace\n"
            "rng = random.Random(21)\n"
            "pairs = [(0, rng.randrange(24) * 32) for _ in range(600)]\n"
            "cache = CacheConfig(32 * 4 * 4, 32, 4)\n"
            "r = simulate_trace(pairs, cache, policy='random', seed=4)\n"
            "print(r.total_misses, sorted(r.misses.items()))\n"
        )
        outputs = set()
        for hash_seed in ("0", "4242"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": hash_seed},
            )
            assert result.returncode == 0, result.stderr
            outputs.add(result.stdout)
        assert len(outputs) == 1


class TestFullyAssociativeFastPath:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_the_scalar_set_associative_reference(self, policy):
        # A one-set cache *is* a k=lines set-associative cache; the
        # scalar walker never takes the fast path, so it is the
        # independent reference for the vectorized one.
        pytest.importorskip("numpy")
        lines = 8
        cache = CacheConfig(32 * lines, 32, lines)
        assert cache.num_sets == 1
        pairs = _pairs(_stream(31, pages=20))
        fast = simulate_trace(
            pairs, cache, backend="numpy", policy=policy, seed=2
        )
        reference = simulate_trace(
            pairs, cache, backend="scalar", policy=policy, seed=2
        )
        assert fast.accesses == reference.accesses
        assert fast.misses == reference.misses

    def test_fast_path_counter_increments(self):
        pytest.importorskip("numpy")
        fa = CacheConfig(32 * 8, 32, 8)
        split = CacheConfig(32 * 8 * 4, 32, 8)
        pairs = _pairs(_stream(33))
        obs.enable()
        obs.reset()
        try:
            simulate_trace(pairs, fa, backend="numpy", policy="fifo")
            counters = obs.snapshot()["counters"]
            assert counters["sim.policy.fa_fastpath"] == 1
            assert counters["sim.policy.fifo"] == 1
            simulate_trace(pairs, split, backend="numpy", policy="fifo")
            assert obs.snapshot()["counters"]["sim.policy.fa_fastpath"] == 1
        finally:
            obs.disable()


class TestPolicyCounters:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_each_policy_counts_its_runs(self, policy):
        pairs = _pairs(_stream(37))
        cache = CacheConfig(32 * 2 * 2, 32, 2)
        obs.enable()
        obs.reset()
        try:
            simulate_trace(pairs, cache, backend="scalar", policy=policy)
            counters = obs.snapshot()["counters"]
            assert counters["sim.policy." + policy] == 1
            # Trace replays report the aggregate sim.* tallies too.
            assert counters["sim.accesses"] == len(pairs)
            assert (
                counters["sim.hits"] + counters["sim.misses"]
                == counters["sim.accesses"]
            )
        finally:
            obs.disable()
