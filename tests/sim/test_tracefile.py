"""Property tests for the binary trace format (stdlib ``random``, seeded).

The format promise: any ``(uid, address)`` stream whose fields fit the
fixed-width encoding round-trips exactly, and *every* malformed file —
truncation, corruption, wrong version, count/size disagreement — is
rejected with the typed :class:`~repro.errors.TraceFormatError`, never a
bare ``struct.error`` or a silently short read.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.errors import MissingDependencyError, TraceFormatError
from repro.sim import tracefile
from repro.sim.tracefile import (
    HEADER,
    KIND_REF_ADDRESS,
    MAGIC,
    RECORD,
    VERSION,
    import_address_trace,
    read_trace,
    read_trace_arrays,
    write_trace,
)

SEED = 20260808


def random_stream(rng: random.Random, count: int):
    return [
        (rng.randrange(2**32), rng.randrange(2**64)) for _ in range(count)
    ]


# -- round trips ----------------------------------------------------------------------


@pytest.mark.parametrize("count", [0, 1, 2, 17, 1000])
def test_round_trip_random_streams(tmp_path, count):
    rng = random.Random(SEED + count)
    pairs = random_stream(rng, count)
    path = tmp_path / "t.trace"
    assert write_trace(path, pairs) == count
    assert read_trace(path) == pairs
    assert path.stat().st_size == HEADER.size + count * RECORD.size


def test_round_trip_boundary_values(tmp_path):
    pairs = [(0, 0), (2**32 - 1, 2**64 - 1), (1, 2**63)]
    path = tmp_path / "t.trace"
    write_trace(path, pairs)
    assert read_trace(path) == pairs


def test_round_trip_arrays_matches_pure_python(tmp_path):
    numpy = pytest.importorskip("numpy")
    rng = random.Random(SEED)
    pairs = random_stream(rng, 257)
    path = tmp_path / "t.trace"
    write_trace(path, pairs)
    uids, addrs = read_trace_arrays(path)
    assert uids.dtype == numpy.uint32 and addrs.dtype == numpy.uint64
    assert list(zip(uids.tolist(), addrs.tolist())) == pairs
    # Writable copies, not views of the file buffer.
    uids[0] = 1
    addrs[0] = 1


def test_read_trace_arrays_without_numpy_raises(tmp_path, monkeypatch):
    path = tmp_path / "t.trace"
    write_trace(path, [(0, 0)])
    monkeypatch.setattr(
        tracefile._importlib_util, "find_spec", lambda name: None
    )
    with pytest.raises(MissingDependencyError):
        read_trace_arrays(path)


# -- malformed inputs -----------------------------------------------------------------


def _write_valid(tmp_path, pairs):
    path = tmp_path / "t.trace"
    write_trace(path, pairs)
    return path


def test_truncated_payloads_rejected(tmp_path):
    rng = random.Random(SEED)
    path = _write_valid(tmp_path, random_stream(rng, 25))
    raw = path.read_bytes()
    for cut in sorted(rng.sample(range(len(raw)), 12)):
        path.write_bytes(raw[:cut])
        with pytest.raises(TraceFormatError):
            read_trace(path)


def test_trailing_bytes_rejected(tmp_path):
    path = _write_valid(tmp_path, [(1, 2), (3, 4)])
    path.write_bytes(path.read_bytes() + b"\x00")
    with pytest.raises(TraceFormatError, match="trailing"):
        read_trace(path)


def test_corrupt_magic_rejected(tmp_path):
    path = _write_valid(tmp_path, [(1, 2)])
    raw = bytearray(path.read_bytes())
    raw[:4] = b"NOPE"
    path.write_bytes(bytes(raw))
    with pytest.raises(TraceFormatError, match="magic"):
        read_trace(path)


def test_unknown_version_rejected(tmp_path):
    path = tmp_path / "t.trace"
    path.write_bytes(HEADER.pack(MAGIC, VERSION + 1, KIND_REF_ADDRESS, 0))
    with pytest.raises(TraceFormatError, match="version"):
        read_trace(path)


def test_unknown_record_kind_rejected(tmp_path):
    path = tmp_path / "t.trace"
    path.write_bytes(HEADER.pack(MAGIC, VERSION, 99, 0))
    with pytest.raises(TraceFormatError, match="kind"):
        read_trace(path)


def test_count_field_must_match_payload(tmp_path):
    body = RECORD.pack(1, 2) + RECORD.pack(3, 4)
    path = tmp_path / "t.trace"
    path.write_bytes(HEADER.pack(MAGIC, VERSION, KIND_REF_ADDRESS, 5) + body)
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "t.trace"
    path.write_bytes(b"")
    with pytest.raises(TraceFormatError, match="too short"):
        read_trace(path)


@pytest.mark.parametrize(
    "uid,addr", [(-1, 0), (2**32, 0), (0, -1), (0, 2**64)]
)
def test_out_of_range_fields_rejected_on_write(tmp_path, uid, addr):
    with pytest.raises(TraceFormatError):
        write_trace(tmp_path / "t.trace", [(uid, addr)])


# -- raw address import ---------------------------------------------------------------


@pytest.mark.parametrize("byteorder", ["big", "little"])
@pytest.mark.parametrize("word_bytes", [2, 4, 8])
def test_import_address_trace_round_trip(tmp_path, byteorder, word_bytes):
    rng = random.Random(SEED ^ word_bytes)
    addresses = [rng.randrange(2 ** (8 * word_bytes)) for _ in range(61)]
    raw = tmp_path / "raw.addr"
    raw.write_bytes(
        b"".join(a.to_bytes(word_bytes, byteorder) for a in addresses)
    )
    pairs = import_address_trace(
        raw, word_bytes=word_bytes, byteorder=byteorder, ref_uid=7
    )
    assert pairs == [(7, a) for a in addresses]


def test_import_address_trace_rejects_ragged_file(tmp_path):
    raw = tmp_path / "raw.addr"
    raw.write_bytes(b"\x01\x02\x03\x04\x05")
    with pytest.raises(TraceFormatError, match="whole number"):
        import_address_trace(raw, word_bytes=4)


def test_import_address_trace_rejects_bad_parameters(tmp_path):
    raw = tmp_path / "raw.addr"
    raw.write_bytes(b"\x00" * 8)
    with pytest.raises(TraceFormatError):
        import_address_trace(raw, word_bytes=0)
    with pytest.raises(TraceFormatError):
        import_address_trace(raw, byteorder="middle")
    with pytest.raises(TraceFormatError):
        import_address_trace(raw, ref_uid=2**32)


def test_imported_trace_flows_into_the_simulator(tmp_path):
    """End to end: a raw external trace replays through simulate_trace."""
    from repro.layout import CacheConfig
    from repro.sim import simulate_trace

    rng = random.Random(SEED)
    addresses = [rng.randrange(4096) for _ in range(300)]
    raw = tmp_path / "raw.addr"
    raw.write_bytes(b"".join(a.to_bytes(4, "big") for a in addresses))
    pairs = import_address_trace(raw)
    out = tmp_path / "ext.trace"
    write_trace(out, pairs)
    report = simulate_trace(out, CacheConfig.kb(1, 32, 2), backend="scalar")
    assert report.total_accesses == len(addresses)
    assert 0 < report.total_misses <= len(addresses)
