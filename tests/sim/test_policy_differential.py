"""Per-policy differential matrix: every policy, both engines, 210 cases.

The cache-model zoo is only trustworthy inside the same harness that
validates the LRU kernel, so this module runs the full 210-case seeded
program/geometry pool once per registered replacement policy and asserts
scalar-vs-vectorized **bit-identity** of the per-reference tallies.  For
LRU that checks the closed-form stack-distance kernel; for FIFO, PLRU
and random it checks that run compression and set decomposition are
semantics-preserving around the run-head replay.

Two policy-theory properties ride along:

* **LRU inclusion property** — at a fixed set count, a ``k+1``-way LRU
  cache's content always includes the ``k``-way cache's (LRU is a stack
  algorithm), so misses are monotonically non-increasing in
  associativity.  Checked across the case pool.
* **Belady's anomaly** — FIFO is *not* a stack algorithm: the classic
  counterexample (Belady 1969; reference string 1 2 3 4 1 2 5 1 2 3 4 5)
  misses **more** with four frames than with three.  Pinned exactly, on
  both engines.
"""

from __future__ import annotations

import pytest

from repro.layout import CacheConfig
from repro.sim import simulate, simulate_trace
from repro.sim.policy import POLICIES
from tests.harness.differential import (
    FAMILIES,
    check_policy_bit_identity,
    generate_cases,
)

pytest.importorskip("numpy", reason="the vectorized engine needs NumPy")

#: 30 cases per family — 210 total, the same pool as every other sweep.
CASE_COUNT = 30 * len(FAMILIES)

_pool = None


def case_pool():
    """The case pool with normalisation/layout amortised across policies."""
    global _pool
    if _pool is None:
        cases = generate_cases(CASE_COUNT)
        _pool = [(case, case.prepared()) for case in cases]
    return _pool


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_bit_identity_over_case_pool(policy):
    failures = []
    for case, prepared in case_pool():
        failures.extend(
            check_policy_bit_identity(case, policy, seed=11, prepared=prepared)
        )
    assert not failures, "\n".join(failures[:20])


@pytest.mark.parametrize("backend", ["scalar", "numpy"])
def test_lru_inclusion_property(backend):
    """LRU misses never increase with associativity at a fixed set count."""
    num_sets, line = 16, 32
    failures = []
    for case, (nprog, layout) in case_pool()[:: len(FAMILIES)]:
        previous = None
        for assoc in (1, 2, 4, 8):
            cache = CacheConfig(line * num_sets * assoc, line, assoc)
            assert cache.num_sets == num_sets
            misses = simulate(
                nprog, layout, cache, backend=backend, policy="lru"
            ).total_misses
            if previous is not None and misses > previous:
                failures.append(
                    f"{case.name}: {assoc}-way missed {misses} > "
                    f"{previous} at {assoc // 2}-way"
                )
            previous = misses
    assert not failures, "\n".join(failures)


#: Belady's reference string, as (uid, address) pairs one line apart.
_BELADY_PAGES = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]


def _belady_fifo_misses(frames: int, backend: str) -> int:
    line = 32
    cache = CacheConfig(line * frames, line, frames)  # fully associative
    assert cache.num_sets == 1
    pairs = [(0, page * line) for page in _BELADY_PAGES]
    report = simulate_trace(pairs, cache, backend=backend, policy="fifo")
    return report.total_misses


@pytest.mark.parametrize("backend", ["scalar", "numpy"])
def test_fifo_belady_anomaly_pinned(backend):
    """The classic counterexample: 4 FIFO frames miss more than 3."""
    three = _belady_fifo_misses(3, backend)
    four = _belady_fifo_misses(4, backend)
    assert three == 9
    assert four == 10
    assert four > three  # the anomaly itself


@pytest.mark.parametrize("backend", ["scalar", "numpy"])
def test_lru_has_no_anomaly_on_belady_string(backend):
    """The same string under LRU obeys inclusion (10 then 8 misses)."""
    line = 32
    pairs = [(0, page * line) for page in _BELADY_PAGES]
    misses = [
        simulate_trace(
            pairs,
            CacheConfig(line * frames, line, frames),
            backend=backend,
            policy="lru",
        ).total_misses
        for frames in (3, 4)
    ]
    assert misses[0] >= misses[1]
