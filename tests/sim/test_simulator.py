"""Cache simulator tests with hand-computed miss counts."""

import pytest

from repro.ir import ProgramBuilder
from repro.layout import CacheConfig, MemoryLayout, layout_for_refs
from repro.normalize import normalize
from repro.sim import SetAssocLRUCache, simulate
from repro.iteration import Walker


def analyse_ready(pb):
    prog = pb.build()
    nprog = normalize(prog.main)
    layout = layout_for_refs(nprog.refs, declared_order=prog.global_arrays)
    return nprog, layout


class TestLRUCacheState:
    def test_cold_miss_then_hit(self):
        c = SetAssocLRUCache(CacheConfig(64, 32, 1))
        assert not c.access_line(0)
        assert c.access_line(0)

    def test_direct_mapped_conflict(self):
        c = SetAssocLRUCache(CacheConfig(64, 32, 1))  # 2 sets
        assert not c.access_line(0)
        assert not c.access_line(2)  # same set, evicts line 0
        assert not c.access_line(0)

    def test_two_way_holds_two_lines(self):
        c = SetAssocLRUCache(CacheConfig(128, 32, 2))  # 2 sets, 2-way
        c.access_line(0)
        c.access_line(2)
        assert c.access_line(0)
        assert c.access_line(2)

    def test_lru_evicts_least_recent(self):
        c = SetAssocLRUCache(CacheConfig(64, 32, 2))  # 1 set, 2-way
        c.access_line(0)
        c.access_line(1)
        c.access_line(0)  # 1 is now LRU
        c.access_line(2)  # evicts 1
        assert c.access_line(0)
        assert not c.access_line(1)

    def test_access_address(self):
        c = SetAssocLRUCache(CacheConfig(64, 32, 1))
        assert not c.access_address(5)
        assert c.access_address(31)  # same 32B line
        assert not c.access_address(32)

    def test_flush(self):
        c = SetAssocLRUCache(CacheConfig(64, 32, 1))
        c.access_line(0)
        c.flush()
        assert not c.access_line(0)
        assert c.resident_lines() == {0}


class TestSimulateKnownCounts:
    def test_sequential_scan_spatial_locality(self):
        """A(1..16) REAL*8 with 32B lines: one miss per 4 elements."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (16,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 16) as i:
                pb.assign(a[i])
        nprog, layout = analyse_ready(pb)
        report = simulate(nprog, layout, CacheConfig.kb(32, 32, 1))
        assert report.total_accesses == 16
        assert report.total_misses == 4
        assert report.miss_ratio == 0.25

    def test_repeat_scan_all_hits_second_time(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (16,))
        with pb.subroutine("MAIN"):
            with pb.do("T", 1, 2):
                with pb.do("I", 1, 16) as i:
                    pb.assign(a[i])
        nprog, layout = analyse_ready(pb)
        report = simulate(nprog, layout, CacheConfig.kb(32, 32, 1))
        assert report.total_accesses == 32
        assert report.total_misses == 4  # second sweep hits in cache

    def test_capacity_misses_when_footprint_exceeds_cache(self):
        """Footprint 8KB > 1KB cache: every revisit misses again."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (1024,))  # 8KB
        with pb.subroutine("MAIN"):
            with pb.do("T", 1, 2):
                with pb.do("I", 1, 1024) as i:
                    pb.assign(a[i])
        nprog, layout = analyse_ready(pb)
        report = simulate(nprog, layout, CacheConfig.kb(1, 32, 1))
        assert report.total_misses == 2 * 1024 // 4

    def test_conflict_misses_direct_mapped_vs_2way(self):
        """Two arrays exactly one cache apart: ping-pong in direct mapped."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (128,))  # 1KB
        b = pb.array("B", (128,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 128) as i:
                pb.assign(b[i], a[i])
        prog = pb.build()
        nprog = normalize(prog.main)
        layout = MemoryLayout(prog.global_arrays, align=1024)
        direct = simulate(nprog, layout, CacheConfig.kb(1, 32, 1))
        two_way = simulate(nprog, layout, CacheConfig.kb(1, 32, 2))
        # Direct mapped: A(i) and B(i) map to the same set -> every access misses.
        assert direct.total_misses == 256
        # 2-way: both lines coexist -> one miss per line per array.
        assert two_way.total_misses == 64

    def test_write_counts_as_access(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (4,))
        b = pb.array("B", (4,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 4) as i:
                pb.assign(b[i], a[i])  # one read + one write per iteration
        nprog, layout = analyse_ready(pb)
        report = simulate(nprog, layout, CacheConfig.kb(32, 32, 1))
        assert report.total_accesses == 8

    def test_per_reference_ratios(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (16,))
        with pb.subroutine("MAIN"):
            with pb.do("T", 1, 2):
                with pb.do("I", 1, 16) as i:
                    pb.assign(a[i])
        nprog, layout = analyse_ready(pb)
        report = simulate(nprog, layout, CacheConfig.kb(32, 32, 1))
        ref = nprog.refs[0]
        assert report.ref_miss_ratio(ref) == report.miss_ratio

    def test_guarded_statement_skipped_when_false(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (16,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 16) as i:
                with pb.if_(i.le(8)):
                    pb.assign(a[i])
        nprog, layout = analyse_ready(pb)
        report = simulate(nprog, layout, CacheConfig.kb(32, 32, 1))
        assert report.total_accesses == 8

    def test_empty_report_ratio_zero(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (4,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 0) as i:  # empty loop range
                pb.assign(a[i])
        nprog, layout = analyse_ready(pb)
        report = simulate(nprog, layout, CacheConfig.kb(32, 32, 1))
        assert report.total_accesses == 0
        assert report.miss_ratio == 0.0

    def test_reuse_across_nests(self):
        """Second nest re-reads what the first nest wrote (inter-nest reuse)."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (32,))
        b = pb.array("B", (32,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 32) as i:
                pb.assign(a[i])
            with pb.do("I", 1, 32) as i:
                pb.assign(b[i], a[i])
        nprog, layout = analyse_ready(pb)
        report = simulate(nprog, layout, CacheConfig.kb(32, 32, 1))
        # A misses 8 (first nest), hits in second; B misses 8.
        assert report.total_misses == 16

    def test_walker_can_be_reused(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (16,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 16) as i:
                pb.assign(a[i])
        nprog, layout = analyse_ready(pb)
        walker = Walker(nprog, layout)
        r1 = simulate(nprog, layout, CacheConfig.kb(32, 32, 1), walker=walker)
        r2 = simulate(nprog, layout, CacheConfig.kb(32, 32, 1), walker=walker)
        assert r1.total_misses == r2.total_misses


class TestBackendSelection:
    """The simulator's resolve/degrade backend contract (ISSUE 6)."""

    def _scan(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (64,))
        with pb.subroutine("MAIN"):
            with pb.do("T", 1, 2):
                with pb.do("I", 1, 64) as i:
                    pb.assign(a[i])
        return analyse_ready(pb)

    def test_unknown_backend_rejected(self):
        from repro.errors import ReproError

        nprog, layout = self._scan()
        with pytest.raises(ReproError, match="unknown"):
            simulate(nprog, layout, CacheConfig.kb(1, 32, 1), backend="torch")

    def test_backends_agree_and_auto_resolves(self):
        nprog, layout = self._scan()
        cache = CacheConfig.kb(1, 32, 2)
        scalar = simulate(nprog, layout, cache, backend="scalar")
        auto = simulate(nprog, layout, cache)
        explicit = simulate(nprog, layout, cache, backend="numpy")
        assert scalar.accesses == auto.accesses == explicit.accesses
        assert scalar.misses == auto.misses == explicit.misses

    def test_numpy_request_degrades_without_numpy(self, monkeypatch):
        import repro.cme.backend as backend_mod

        monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
        nprog, layout = self._scan()
        report = simulate(
            nprog, layout, CacheConfig.kb(1, 32, 2), backend="numpy"
        )
        assert report.total_accesses == 128  # scalar walker ran

    def test_oversized_trace_falls_back_to_scalar(self, monkeypatch):
        pytest.importorskip("numpy")
        import repro.sim.batch as batch_mod

        monkeypatch.setattr(batch_mod, "MAX_TRACE_ACCESSES", 10)
        nprog, layout = self._scan()
        report = simulate(
            nprog, layout, CacheConfig.kb(1, 32, 2), backend="numpy"
        )
        assert report.total_accesses == 128

    @pytest.mark.parametrize("backend", ["scalar", "numpy"])
    def test_sweep_matches_per_cache_simulate(self, backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        from repro.sim import simulate_sweep

        nprog, layout = self._scan()
        caches = [
            CacheConfig.kb(1, 32, 1),
            CacheConfig.kb(1, 32, 2),
            CacheConfig.kb(1, 16, 4),  # different line size in one sweep
        ]
        reports = simulate_sweep(nprog, layout, caches, backend=backend)
        assert [r.cache for r in reports] == caches
        for cache, swept in zip(caches, reports):
            direct = simulate(nprog, layout, cache, backend=backend)
            assert swept.accesses == direct.accesses
            assert swept.misses == direct.misses

    def test_sweep_of_nothing_is_empty(self):
        from repro.sim import simulate_sweep

        nprog, layout = self._scan()
        assert simulate_sweep(nprog, layout, []) == []


class TestSimulateTrace:
    """Replaying explicit traces, and the uid-mismatch invariant."""

    def _prog(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (16,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 16) as i:
                pb.assign(a[i])
        return analyse_ready(pb)

    @pytest.mark.parametrize("backend", ["scalar", "numpy"])
    def test_unknown_uid_raises_invariant_error(self, backend):
        """Regression: unknown trace uids used to be silently dropped from
        the tallies, skewing every aggregate ratio."""
        from repro.errors import InvariantError
        from repro.sim import simulate_trace

        if backend == "numpy":
            pytest.importorskip("numpy")
        nprog, _ = self._prog()
        trace = [(0, 0), (7, 64)]  # uid 7 does not exist in the program
        with pytest.raises(InvariantError, match="uid 7"):
            simulate_trace(
                trace, CacheConfig.kb(1, 32, 1), refs=nprog.refs, backend=backend
            )

    @pytest.mark.parametrize("backend", ["scalar", "numpy"])
    def test_refs_prefill_zero_tallies(self, backend):
        from repro.sim import simulate_trace

        if backend == "numpy":
            pytest.importorskip("numpy")
        nprog, _ = self._prog()
        report = simulate_trace(
            [], CacheConfig.kb(1, 32, 1), refs=nprog.refs, backend=backend
        )
        assert report.accesses == {r.uid: 0 for r in nprog.refs}
        assert report.misses == {r.uid: 0 for r in nprog.refs}
        assert report.miss_ratio == 0.0

    @pytest.mark.parametrize("backend", ["scalar", "numpy"])
    def test_without_refs_tallies_by_trace_uid(self, backend):
        from repro.sim import simulate_trace

        if backend == "numpy":
            pytest.importorskip("numpy")
        trace = [(3, 0), (3, 0), (9, 32)]
        report = simulate_trace(trace, CacheConfig.kb(1, 32, 1), backend=backend)
        assert report.accesses == {3: 2, 9: 1}
        assert report.misses == {3: 1, 9: 1}


class TestSweepValidation:
    """Regression: ``simulate_sweep`` used to accept duplicate and
    unsorted associativity lists silently — duplicates were simulated
    (and reported) twice and curves came back out of order; non-positive
    values built nonsensical geometries instead of failing fast."""

    def _scan(self):
        pb = ProgramBuilder("SWEEPV")
        a = pb.array("A", (64,))
        with pb.subroutine("MAIN"):
            with pb.do("T", 1, 2):
                with pb.do("I", 1, 64) as i:
                    pb.assign(a[i])
        return analyse_ready(pb)

    @pytest.mark.parametrize("backend", ["scalar", "numpy"])
    def test_assoc_sweep_dedupes_and_sorts(self, backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        from repro.sim import simulate_sweep

        nprog, layout = self._scan()
        base = CacheConfig.kb(2, 32, 4)
        reports = simulate_sweep(
            nprog, layout, base, backend=backend, assocs=[4, 1, 2, 2, 1, 4]
        )
        assert [r.cache.assoc for r in reports] == [1, 2, 4]
        for report in reports:
            assert report.cache.size_bytes == base.size_bytes
            assert report.cache.line_bytes == base.line_bytes
            direct = simulate(nprog, layout, report.cache, backend=backend)
            assert report.accesses == direct.accesses
            assert report.misses == direct.misses

    @pytest.mark.parametrize("bad", [0, -2, 1.5, True, "2"])
    def test_invalid_assoc_values_raise(self, bad):
        from repro.errors import InvariantError
        from repro.sim import normalize_assocs

        with pytest.raises(InvariantError, match="positive integers"):
            normalize_assocs([1, bad])

    def test_normalize_assocs_canonicalises(self):
        from repro.sim import normalize_assocs

        assert normalize_assocs([8, 2, 2, 4, 8]) == [2, 4, 8]

    def test_inexpressible_assoc_raises(self):
        from repro.errors import InvariantError
        from repro.sim import assoc_sweep_caches

        with pytest.raises(InvariantError, match="cannot hold 3 ways"):
            assoc_sweep_caches(CacheConfig.kb(2, 32, 1), [3])

    def test_assocs_needs_a_single_base_config(self):
        from repro.errors import InvariantError
        from repro.sim import simulate_sweep

        nprog, layout = self._scan()
        with pytest.raises(InvariantError, match="single base CacheConfig"):
            simulate_sweep(
                nprog,
                layout,
                [CacheConfig.kb(1, 32, 1), CacheConfig.kb(1, 32, 2)],
                assocs=[1, 2],
            )

    @pytest.mark.parametrize("backend", ["scalar", "numpy"])
    def test_duplicate_caches_simulated_once(self, backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        from repro.sim import simulate_sweep

        nprog, layout = self._scan()
        c1 = CacheConfig.kb(1, 32, 2)
        c2 = CacheConfig.kb(1, 32, 1)
        reports = simulate_sweep(
            nprog, layout, [c1, c2, c1], backend=backend
        )
        assert [r.cache for r in reports] == [c1, c2]

    def test_single_base_config_without_assocs_is_one_report(self):
        from repro.sim import simulate_sweep

        nprog, layout = self._scan()
        cache = CacheConfig.kb(1, 32, 2)
        (report,) = simulate_sweep(nprog, layout, cache, backend="scalar")
        assert report.cache == cache

    @pytest.mark.parametrize("backend", ["scalar", "numpy"])
    def test_sweep_carries_the_policy(self, backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        from repro.sim import simulate_sweep

        nprog, layout = self._scan()
        reports = simulate_sweep(
            nprog,
            layout,
            CacheConfig.kb(1, 32, 4),
            backend=backend,
            policy="fifo",
            assocs=[1, 2, 4],
        )
        assert {r.policy for r in reports} == {"fifo"}
        for report in reports:
            direct = simulate(
                nprog, layout, report.cache, backend=backend, policy="fifo"
            )
            assert report.misses == direct.misses
