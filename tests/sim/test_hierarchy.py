"""Two-level (L1 → L2) hierarchy simulation tests.

The hierarchy model is deliberately thin: the L2 *is* the single-level
simulator replaying the L1 miss stream, so the properties to pin are the
stream plumbing (the L2 sees exactly the L1 misses, in order), backend
bit-identity level by level, and the ``RPCT`` persistence of the miss
stream.
"""

from __future__ import annotations

import pytest

from repro import CacheConfig, prepare, run_simulation
from repro.kernels import build_hydro, build_mmt
from repro.sim import (
    HierarchyReport,
    read_trace,
    simulate,
    simulate_hierarchy,
    simulate_trace,
)

L1 = CacheConfig.kb(1, 32, 2)
L2 = CacheConfig.kb(8, 32, 4)


@pytest.fixture(scope="module")
def hydro():
    prepared = prepare(build_hydro(16, 16))
    return prepared.nprog, prepared.layout


class TestHierarchy:
    def test_backends_bit_identical_per_level(self, hydro):
        pytest.importorskip("numpy")
        nprog, layout = hydro
        for policy, l2_policy in (("lru", "lru"), ("fifo", "plru")):
            scalar = simulate_hierarchy(
                nprog, layout, L1, L2, backend="scalar",
                policy=policy, l2_policy=l2_policy,
            )
            batch = simulate_hierarchy(
                nprog, layout, L1, L2, backend="numpy",
                policy=policy, l2_policy=l2_policy,
            )
            assert scalar.l1.misses == batch.l1.misses
            assert scalar.l2.accesses == batch.l2.accesses
            assert scalar.l2.misses == batch.l2.misses

    @pytest.mark.parametrize("backend", ["scalar", "numpy"])
    def test_l2_sees_exactly_the_l1_misses(self, hydro, backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        nprog, layout = hydro
        report = simulate_hierarchy(nprog, layout, L1, L2, backend=backend)
        assert report.l2.accesses == report.l1.misses
        assert report.l1.accesses == simulate(
            nprog, layout, L1, backend=backend
        ).accesses

    def test_l1_level_matches_single_level_simulation(self, hydro):
        nprog, layout = hydro
        report = simulate_hierarchy(nprog, layout, L1, L2, backend="scalar")
        single = simulate(nprog, layout, L1, backend="scalar")
        assert report.l1.misses == single.misses
        assert report.l1.accesses == single.accesses

    @pytest.mark.parametrize("backend", ["scalar", "numpy"])
    def test_miss_stream_persists_as_rpct_trace(self, hydro, backend, tmp_path):
        if backend == "numpy":
            pytest.importorskip("numpy")
        nprog, layout = hydro
        path = tmp_path / f"l1-misses-{backend}.trace"
        report = simulate_hierarchy(
            nprog, layout, L1, L2, backend=backend, miss_trace_path=path
        )
        pairs = read_trace(path)
        assert len(pairs) == report.l1.total_misses
        # Replaying the persisted stream reproduces the L2 level exactly.
        replayed = simulate_trace(
            path, L2, refs=nprog.refs, backend=backend
        )
        assert replayed.misses == report.l2.misses
        assert replayed.accesses == report.l2.accesses

    def test_ratio_arithmetic(self, hydro):
        nprog, layout = hydro
        report = simulate_hierarchy(nprog, layout, L1, L2, backend="scalar")
        total = report.total_accesses
        assert total == report.l1.total_accesses
        assert report.global_miss_ratio_percent == pytest.approx(
            100.0 * report.l2.total_misses / total
        )
        assert report.l1_miss_ratio_percent >= report.global_miss_ratio_percent
        assert report.elapsed_seconds == pytest.approx(
            report.l1.elapsed_seconds + report.l2.elapsed_seconds
        )

    def test_l2_policy_defaults_to_l1_policy(self, hydro):
        nprog, layout = hydro
        report = simulate_hierarchy(
            nprog, layout, L1, L2, backend="scalar", policy="fifo"
        )
        assert report.l1.policy == "fifo"
        assert report.l2.policy == "fifo"


class TestFacade:
    def test_run_simulation_returns_hierarchy_report(self):
        prepared = prepare(build_mmt(16, 8, 4))
        report = run_simulation(
            prepared, L1, l2_cache=L2, policy="lru", l2_policy="random"
        )
        assert isinstance(report, HierarchyReport)
        assert report.l2.policy == "random"
        single = run_simulation(prepared, L1)
        assert report.l1.misses == single.misses
