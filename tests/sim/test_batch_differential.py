"""Trace-level differential sweep: vectorized vs scalar simulator (ISSUE 6).

Over the same 210-case seeded pool as the classification-backend sweep
(all harness families, all cache geometries), the stack-distance kernel
must be **bit-identical** to :class:`~repro.sim.cache.SetAssocLRUCache`:

* ``simulate(backend="numpy")`` reports the same per-reference
  ``accesses`` and ``misses`` dicts as ``simulate(backend="scalar")``,
  case for case;
* the batch trace builder reproduces the walker's access stream pair for
  pair, and its binary-file round trip equals :func:`naive_trace` — the
  independent per-leaf-enumeration oracle;
* replaying an exported trace file (:func:`simulate_trace`) matches the
  in-memory simulation on both backends.

This module pins the default (LRU) engine; the same 210-case pool is
re-run once per replacement policy — FIFO, tree-PLRU and seeded-random
via the run-head-replay kernel — in
``tests/sim/test_policy_differential.py`` (ISSUE 8), which also pins the
LRU inclusion property and FIFO's Belady anomaly.
"""

from __future__ import annotations

import pytest

from repro.iteration import Walker
from repro.sim import (
    collect_walker_trace,
    naive_trace,
    read_trace,
    simulate,
    simulate_trace,
    write_trace,
)
from tests.harness.differential import FAMILIES, generate_cases

pytest.importorskip("numpy", reason="the batch simulator needs NumPy")

#: 30 cases per family — 210 total, same pool as the backend sweep.
CASE_COUNT = 30 * len(FAMILIES)

_cases = None


def all_cases():
    global _cases
    if _cases is None:
        _cases = generate_cases(CASE_COUNT)
    return _cases


def test_sim_reports_bit_identical():
    failures = []
    for case in all_cases():
        nprog, layout = case.prepared()
        scalar = simulate(nprog, layout, case.cache, backend="scalar")
        batch = simulate(nprog, layout, case.cache, backend="numpy")
        if batch.accesses != scalar.accesses:
            failures.append(f"{case.name}: access tallies diverge")
        if batch.misses != scalar.misses:
            failures.append(f"{case.name}: miss tallies diverge")
    assert not failures, "\n".join(failures[:20])


def test_trace_arrays_match_walker_stream():
    # One case per family covers both trace builders (the guarded
    # families use the lex-sort path, the rest the rectangular one).
    from repro.sim import batch

    for case in all_cases()[: 2 * len(FAMILIES)]:
        nprog, layout = case.prepared()
        walker = Walker(nprog, layout)
        uids, addrs = batch.trace_arrays(nprog, layout, walker)
        assert (
            list(zip(uids.tolist(), addrs.tolist()))
            == collect_walker_trace(walker)
        ), f"{case.name}: batch trace diverges from the walker stream"


def test_exported_trace_round_trips_to_naive_trace(tmp_path):
    # naive_trace enumerates per leaf and sorts — a fully independent
    # oracle for the order the binary file must replay in.
    for k, case in enumerate(all_cases()[:: len(FAMILIES) * 3]):
        nprog, layout = case.prepared()
        path = tmp_path / f"case{k}.trace"
        write_trace(path, collect_walker_trace(Walker(nprog, layout)))
        assert read_trace(path) == [
            (e.ref_uid, e.address) for e in naive_trace(nprog, layout)
        ], f"{case.name}: exported trace != naive_trace"


@pytest.mark.parametrize("backend", ["scalar", "numpy"])
def test_trace_file_replay_matches_simulation(tmp_path, backend):
    for k, case in enumerate(all_cases()[7 :: len(FAMILIES) * 5]):
        nprog, layout = case.prepared()
        path = tmp_path / f"case{k}.trace"
        write_trace(path, collect_walker_trace(Walker(nprog, layout)))
        replayed = simulate_trace(
            path, case.cache, refs=nprog.refs, backend=backend
        )
        direct = simulate(nprog, layout, case.cache, backend=backend)
        assert replayed.accesses == direct.accesses, case.name
        assert replayed.misses == direct.misses, case.name
