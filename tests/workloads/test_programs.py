"""Whole-program workloads: inlining coverage and Table 6-style accuracy."""

import pytest

from repro import (
    CacheConfig,
    analyze,
    classify_program,
    prepare,
    program_stats,
    run_simulation,
)
from repro.programs import build_applu_like, build_swim_like, build_tomcatv_like


class TestStructure:
    """Table 5 shape: the three programs scale in calls and subroutines."""

    def test_tomcatv_single_routine_no_calls(self):
        stats = program_stats(build_tomcatv_like(16, 1))
        assert stats.subroutines == 1
        assert stats.call_statements == 0

    def test_swim_parameterless_calls(self):
        prog = build_swim_like(16, 2)
        stats = program_stats(prog)
        assert stats.subroutines == 5
        assert stats.call_statements == 4
        cs = classify_program(prog)
        assert cs.calls_analysable == cs.calls_total == 4
        assert cs.actuals_total == 0  # all parameterless

    def test_applu_all_actuals_propagateable(self):
        """The paper: 'All actual parameters are propagateable' for Applu."""
        prog = build_applu_like(12, 1)
        cs = classify_program(prog)
        assert cs.n_able == 0
        assert cs.r_able == 0
        assert cs.p_able == cs.actuals_total > 0
        assert cs.calls_analysable == cs.calls_total == 8

    def test_applu_one_nest_after_inlining(self):
        """'We have succeeded in abstractly inlining all the calls.'"""
        prepared = prepare(build_applu_like(12, 1))
        assert prepared.inline_result.fully_analysable
        assert prepared.inline_result.inlined_instances == 8


class TestAccuracy:
    """Table 6 claims at miniature scale: small absolute error, conservative."""

    @pytest.mark.parametrize(
        "builder,args",
        [
            (build_tomcatv_like, (24, 1)),
            (build_swim_like, (24, 1)),
            (build_applu_like, (12, 1)),
        ],
    )
    @pytest.mark.parametrize("assoc", [1, 2])
    def test_estimate_vs_simulation(self, builder, args, assoc):
        prepared = prepare(builder(*args))
        cache = CacheConfig.kb(4, 32, assoc)
        est = analyze(prepared, cache, method="estimate", seed=1)
        sim = run_simulation(prepared, cache)
        assert est.total_accesses == sim.total_accesses
        assert abs(est.miss_ratio_percent - sim.miss_ratio_percent) < 3.0

    def test_reuse_across_calls_is_exploited(self):
        """Two callees at the same loop depth reuse each other's data: with
        propagation the analysis is exact; if inlining failed to propagate
        the actuals the second sweep's hits would be misclassified."""
        from repro.ir import ProgramBuilder

        pb = ProgramBuilder("CROSSCALL")
        a = pb.array("A", (64,))
        with pb.subroutine("MAIN"):
            with pb.do("T", 1, 2):
                pb.call("PRODUCE", a)
                pb.call("CONSUME", a)
        with pb.subroutine("PRODUCE") as s:
            c = s.array_formal("C", (64,))
            with pb.do("I", 1, 64) as i:
                pb.assign(c[i])
        with pb.subroutine("CONSUME") as s:
            c = s.array_formal("C", (64,))
            with pb.do("I", 1, 64) as i:
                pb.read(c[i])
        prepared = prepare(pb.build())
        cache = CacheConfig.kb(32, 32, 2)
        exact = analyze(prepared, cache, method="find")
        sim = run_simulation(prepared, cache)
        assert exact.total_misses == sim.total_misses == 16

    def test_depth_misaligned_nests_stay_conservative(self):
        """Applu-like: init nests sit one depth shallower than the SSOR body,
        so cross-depth reuse is not uniformly generated — the method (like
        the paper's) may only over-estimate, never under-estimate."""
        prepared = prepare(build_applu_like(12, 1))
        cache = CacheConfig.kb(32, 32, 2)
        exact = analyze(prepared, cache, method="find")
        sim = run_simulation(prepared, cache)
        assert exact.total_misses >= sim.total_misses

    def test_negative_stride_sweeps_analysable(self):
        """Applu's backward (buts) sweeps use negative strides."""
        prepared = prepare(build_applu_like(10, 1))
        cache = CacheConfig.kb(2, 32, 1)
        est = analyze(prepared, cache, method="estimate", seed=0)
        sim = run_simulation(prepared, cache)
        assert abs(est.miss_ratio_percent - sim.miss_ratio_percent) < 4.0
