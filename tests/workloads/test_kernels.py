"""The Fig. 8 kernels: structural checks and FindMisses-vs-simulator validation."""

import pytest

from repro import CacheConfig, analyze, prepare, program_stats, run_simulation
from repro.kernels import build_hydro, build_mgrid, build_mmt


class TestHydro:
    @pytest.fixture(scope="class")
    def prepared(self):
        return prepare(build_hydro(24, 24))

    def test_structure(self):
        stats = program_stats(build_hydro(10, 10))
        assert stats.subroutines == 1
        assert stats.call_statements == 0
        # H1: 9 refs, H2: 9, H3: 11, H4: 11, H5: 3, H6: 3
        assert stats.references == 46

    @pytest.mark.parametrize("assoc", [1, 2, 4])
    def test_findmisses_exact_table3_claim(self, prepared, assoc):
        """Table 3: FindMisses and the simulator agree exactly on Hydro."""
        cache = CacheConfig.kb(8, 32, assoc)
        analytic = analyze(prepared, cache, method="find")
        simulated = run_simulation(prepared, cache)
        assert analytic.total_misses == simulated.total_misses
        assert analytic.total_accesses == simulated.total_accesses

    def test_three_nests_normalised(self, prepared):
        assert len(prepared.nprog.roots) == 3
        assert prepared.nprog.depth == 2


class TestMgrid:
    @pytest.fixture(scope="class")
    def prepared(self):
        return prepare(build_mgrid(10))

    def test_structure(self):
        stats = program_stats(build_mgrid(8))
        assert stats.references == 3 + 4 + 4 + 6

    @pytest.mark.parametrize("assoc", [1, 2, 4])
    def test_findmisses_exact_table3_claim(self, prepared, assoc):
        """Table 3: FindMisses and the simulator agree exactly on MGRID."""
        cache = CacheConfig.kb(8, 32, assoc)
        analytic = analyze(prepared, cache, method="find")
        simulated = run_simulation(prepared, cache)
        assert analytic.total_misses == simulated.total_misses

    def test_imperfect_nest_depth(self, prepared):
        assert prepared.nprog.depth == 3


class TestMMT:
    @pytest.fixture(scope="class")
    def prepared(self):
        return prepare(build_mmt(16, 16, 8))

    def test_register_scalar_not_counted(self):
        stats = program_stats(build_mmt(8, 8, 4))
        # T1: 2 refs, T2: 1 (A read only), T3: 3.
        assert stats.references == 6

    def test_blocked_loops_normalise(self, prepared):
        nprog = prepared.nprog
        assert nprog.depth == 5  # J2, K2, (J|I), K, (J) after padding
        # every point executes: trace length must match the blocked algebra
        sim = run_simulation(prepared, CacheConfig.kb(8, 32, 1))
        n, bj, bk = 16, 16, 8
        blocks = (n // bj) * (n // bk)
        copy = bj * bk * 2
        compute = n * bk * (1 + 3 * bj)
        assert sim.total_accesses == blocks * (copy + compute)

    @pytest.mark.parametrize("assoc", [1, 2])
    def test_findmisses_conservative_table3_claim(self, prepared, assoc):
        """Table 3: MMT is slightly over-estimated, never under-estimated
        (the transposed B/WB references are not uniformly generated)."""
        cache = CacheConfig.kb(2, 32, assoc)
        analytic = analyze(prepared, cache, method="find")
        simulated = run_simulation(prepared, cache)
        assert analytic.total_misses >= simulated.total_misses
        assert (
            analytic.miss_ratio_percent - simulated.miss_ratio_percent
        ) < 5.0


class TestEstimateOnKernels:
    """Table 4: EstimateMisses stays close to the exact/simulated ratios."""

    @pytest.mark.parametrize(
        "builder,args",
        [(build_hydro, (24, 24)), (build_mgrid, (10,)), (build_mmt, (16, 16, 8))],
    )
    def test_estimate_absolute_error_small(self, builder, args):
        prepared = prepare(builder(*args))
        cache = CacheConfig.kb(8, 32, 1)
        est = analyze(prepared, cache, method="estimate", seed=3)
        sim = run_simulation(prepared, cache)
        assert abs(est.miss_ratio_percent - sim.miss_ratio_percent) < 3.0
