"""Validation on the extra Livermore/Linpack-family kernels.

These exercise the analysis features the Fig. 8 trio does not: triangular
index-dependent bounds (LU), bidirectional sweeps with negative strides
(ADI) and pure streaming (DAXPY).
"""

import pytest

from repro import CacheConfig, analyze, prepare, run_simulation
from repro.iteration import Walker
from repro.kernels.extra import build_adi, build_daxpy, build_lu
from repro.sim import collect_walker_trace, reference_trace


class TestDaxpy:
    def test_exact_and_streaming(self):
        prepared = prepare(build_daxpy(512, 2))
        cache = CacheConfig.kb(32, 32, 1)  # both vectors fit: 8KB
        analytic = analyze(prepared, cache, method="find")
        ground = run_simulation(prepared, cache)
        assert analytic.total_misses == ground.total_misses
        # first sweep: cold misses only; second sweep: all hits
        assert analytic.total_misses == 2 * 512 // 4

    def test_capacity_bound_second_sweep_misses(self):
        prepared = prepare(build_daxpy(1024, 2))  # 16KB footprint
        cache = CacheConfig.kb(4, 32, 1)
        analytic = analyze(prepared, cache, method="find")
        ground = run_simulation(prepared, cache)
        assert analytic.total_misses == ground.total_misses


class TestLU:
    @pytest.fixture(scope="class")
    def prepared(self):
        return prepare(build_lu(16))

    def test_triangular_populations(self, prepared):
        """RIS volumes of the update statement: sum of (n-k)^2."""
        n = 16
        update_write = next(
            r for r in prepared.nprog.refs
            if r.leaf.stmt_label == "L2" and r.is_write
        )
        expected = sum((n - k) ** 2 for k in range(1, n))
        assert prepared.nprog.ris(update_write.leaf).count() == expected

    @pytest.mark.parametrize("assoc", [1, 2])
    def test_conservative_and_tight_vs_simulator(self, prepared, assoc):
        """The panel statement L1 sits one loop shallower than the update
        L2, so after innermost padding their A references are not
        uniformly generated — conservative (and close), not exact."""
        cache = CacheConfig.kb(1, 32, assoc)
        analytic = analyze(prepared, cache, method="find")
        ground = run_simulation(prepared, cache)
        assert analytic.total_accesses == ground.total_accesses
        assert analytic.total_misses >= ground.total_misses
        assert (
            analytic.miss_ratio_percent - ground.miss_ratio_percent
        ) < 3.0

    def test_estimate_tracks_simulation(self):
        prepared = prepare(build_lu(24))
        cache = CacheConfig.kb(2, 32, 2)
        est = analyze(prepared, cache, method="estimate", seed=0)
        ground = run_simulation(prepared, cache)
        assert abs(est.miss_ratio_percent - ground.miss_ratio_percent) < 3.0


class TestADI:
    @pytest.fixture(scope="class")
    def prepared(self):
        return prepare(build_adi(20, 2))

    def test_normalisation_preserves_trace(self, prepared):
        raw = reference_trace(
            prepared.inline_result.flat, prepared.layout
        )
        normalised = [
            addr for _, addr in collect_walker_trace(
                Walker(prepared.nprog, prepared.layout)
            )
        ]
        assert raw == normalised

    @pytest.mark.parametrize("assoc", [1, 2])
    def test_conservative_vs_simulator(self, prepared, assoc):
        """The downward sweep's X references have negated linear parts, so
        cross-sweep reuse is not uniformly generated: conservative only."""
        cache = CacheConfig.kb(2, 32, assoc)
        analytic = analyze(prepared, cache, method="find")
        ground = run_simulation(prepared, cache)
        assert analytic.total_misses >= ground.total_misses
        assert (
            analytic.miss_ratio_percent - ground.miss_ratio_percent
        ) < 15.0

    def test_estimate_tracks_simulation(self, prepared):
        cache = CacheConfig.kb(2, 32, 1)
        est = analyze(prepared, cache, method="estimate", seed=1)
        exact = analyze(prepared, cache, method="find")
        assert abs(est.miss_ratio - exact.miss_ratio) < 0.05
