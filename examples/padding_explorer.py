"""Inter-array padding selection — the second optimisation the paper's
introduction motivates (Rivera & Tseng-style conflict-miss elimination).

Two arrays laid out exactly one cache apart ping-pong in a direct-mapped
cache: every access of a copy loop conflicts.  The analytical model can
evaluate a range of pad sizes in seconds without running the program; the
example sweeps pads, picks the best, and validates with the simulator.

Run:  python examples/padding_explorer.py
"""

from repro import CacheConfig, ProgramBuilder, analyze, prepare, run_simulation

N = 512  # two 4KB arrays
CACHE = CacheConfig.kb(4, 32, 1)  # 4KB direct mapped: worst case for copy
PADS = [0, 32, 64, 128, 256]


def build_copy():
    pb = ProgramBuilder("COPY")
    a = pb.array("A", (N,))
    b = pb.array("B", (N,))
    with pb.subroutine("MAIN"):
        with pb.do("I", 1, N) as i:
            pb.assign(b[i], a[i])
    return pb.build()


def main() -> None:
    program = build_copy()
    print(f"Copy of two {N * 8 // 1024}KB arrays on a {CACHE.describe()} cache\n")
    print(f"{'pad (B)':>8} | {'predicted %':>12} | {'simulated %':>12}")
    print("-" * 40)

    results = []
    for pad in PADS:
        # `pad_bytes` inserts the pad after each array in the layout.
        prepared = prepare(program, align=CACHE.line_bytes, pad_bytes={"A": pad})
        predicted = analyze(prepared, CACHE, method="find")
        ground = run_simulation(prepared, CACHE)
        results.append((pad, predicted.miss_ratio_percent,
                        ground.miss_ratio_percent))
        print(f"{pad:>8} | {predicted.miss_ratio_percent:>11.2f}% | "
              f"{ground.miss_ratio_percent:>11.2f}%")

    best = min(results, key=lambda r: r[1])
    print(f"\nAnalytically chosen pad: {best[0]} bytes "
          f"({best[1]:.2f}% predicted, {best[2]:.2f}% simulated)")
    unpadded = results[0]
    print(f"Conflict misses removed vs no padding: "
          f"{unpadded[2] - best[2]:.2f} percentage points")


if __name__ == "__main__":
    main()
