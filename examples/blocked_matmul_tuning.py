"""Tile-size selection for blocked matrix multiplication — the paper's
"guide compiler locality optimisations" use case.

Loop tiling (the MMT kernel of Fig. 8) trades loop overhead against cache
footprint; the right block sizes depend on the cache geometry.  Instead of
running every variant, this example asks ``EstimateMisses`` for the
predicted miss ratio of each candidate tiling in a fraction of the time,
picks the winner, and then validates the ranking with the simulator.

Run:  python examples/blocked_matmul_tuning.py
"""

import time

from repro import CacheConfig, analyze, prepare, run_simulation
from repro.kernels import build_mmt

N = 48
CANDIDATE_TILES = [(48, 48), (48, 24), (24, 24), (24, 12), (12, 12), (8, 8)]
CACHE = CacheConfig.kb(2, 32, 2)


def main() -> None:
    print(f"Tuning MMT (N={N}) for a {CACHE.describe()} cache\n")
    print(f"{'BJ':>4} {'BK':>4} | {'predicted %':>12} | {'analysis t':>10}")
    print("-" * 42)

    predictions = []
    analysis_time = 0.0
    for bj, bk in CANDIDATE_TILES:
        prepared = prepare(build_mmt(N, bj, bk))
        started = time.perf_counter()
        report = analyze(prepared, CACHE, method="estimate", seed=0)
        elapsed = time.perf_counter() - started
        analysis_time += elapsed
        predictions.append(((bj, bk), report.miss_ratio_percent, prepared))
        print(f"{bj:>4} {bk:>4} | {report.miss_ratio_percent:>11.2f}% | "
              f"{elapsed:>9.2f}s")

    predictions.sort(key=lambda entry: entry[1])
    (best_bj, best_bk), best_ratio, _ = predictions[0]
    print(f"\nAnalytical winner: BJ={best_bj}, BK={best_bk} "
          f"({best_ratio:.2f}% predicted, {analysis_time:.1f}s total)")

    # Validate the ranking of the top and bottom candidates by simulation.
    print("\nValidation against the simulator:")
    for (bj, bk), predicted, prepared in (predictions[0], predictions[-1]):
        ground = run_simulation(prepared, CACHE)
        print(f"  BJ={bj:>2} BK={bk:>2}: predicted {predicted:6.2f}%  "
              f"simulated {ground.miss_ratio_percent:6.2f}%")

    best_sim = run_simulation(predictions[0][2], CACHE).miss_ratio_percent
    worst_sim = run_simulation(predictions[-1][2], CACHE).miss_ratio_percent
    verdict = "confirmed" if best_sim <= worst_sim else "NOT confirmed"
    print(f"\nRanking {verdict}: the analytically chosen tile simulates at "
          f"{best_sim:.2f}% vs {worst_sim:.2f}% for the worst candidate.")


if __name__ == "__main__":
    main()
