"""Analysing FORTRAN source directly — the paper's input language.

Parses a mini-FORTRAN transcription of the Hydro kernel (Fig. 8) with the
bundled frontend, then runs the whole pipeline on it.  Any ``.f`` file in
the supported subset works the same way (see also ``repro-cache analyze
path/to/file.f``).

Run:  python examples/fortran_frontend.py
"""

from repro import CacheConfig, analyze, prepare, run_simulation
from repro.frontend import parse_program

SOURCE = """
C     Hydro fragment (Livermore kernel 18), scaled to 32x32
      PROGRAM HYDRO
      PARAMETER (JN=32, KN=32)
      REAL*8 ZA, ZB, ZP, ZQ, ZR, ZM, ZU, ZZ
      DIMENSION ZA(JN+1,KN+1), ZB(JN+1,KN+1), ZP(JN+1,KN+1)
      DIMENSION ZQ(JN+1,KN+1), ZR(JN+1,KN+1), ZM(JN+1,KN+1)
      DIMENSION ZU(JN+1,KN+1), ZZ(JN+1,KN+1)
      DO K = 2, KN
        DO J = 2, JN
          ZA(J,K) = (ZP(J-1,K+1) + ZQ(J-1,K+1) - ZP(J-1,K) - ZQ(J-1,K))
     &      * (ZR(J,K) + ZR(J-1,K)) / (ZM(J-1,K) + ZM(J-1,K+1))
          ZB(J,K) = (ZP(J-1,K) + ZQ(J-1,K) - ZP(J,K) - ZQ(J,K))
     &      * (ZR(J,K) + ZR(J,K-1)) / (ZM(J,K) + ZM(J-1,K))
        ENDDO
      ENDDO
      DO K = 2, KN
        DO J = 2, JN
          ZU(J,K) = ZU(J,K) + ZA(J,K)*(ZZ(J,K) - ZZ(J+1,K))
     &      - ZA(J-1,K)*ZZ(J-1,K) - ZB(J,K)*ZZ(J,K-1)
     &      + ZB(J,K+1)*ZZ(J,K+1)
        ENDDO
      ENDDO
      END
"""


def main() -> None:
    program = parse_program(SOURCE)
    prepared = prepare(program)
    print(f"Parsed {program.name}: {len(prepared.nprog.refs)} references in "
          f"{len(prepared.nprog.roots)} normalised nests")

    for assoc in (1, 2):
        cache = CacheConfig.kb(4, 32, assoc)
        exact = analyze(prepared, cache, method="find")
        ground = run_simulation(prepared, cache)
        print(f"{cache.describe():>16}: FindMisses "
              f"{exact.miss_ratio_percent:5.2f}%  simulator "
              f"{ground.miss_ratio_percent:5.2f}%  "
              f"(abs err {abs(exact.miss_ratio_percent - ground.miss_ratio_percent):.2f}pp)")


if __name__ == "__main__":
    main()
