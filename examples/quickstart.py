"""Quickstart: predict a loop nest's cache behaviour without running it.

Builds a small two-nest program with the DSL, predicts its miss ratio
analytically (both solvers of the paper's Fig. 6) and validates against the
trace-driven LRU simulator.

Run:  python examples/quickstart.py
"""

from repro import CacheConfig, ProgramBuilder, analyze, prepare, run_simulation


def build_program(n: int = 64):
    """A producer nest followed by a consumer nest (inter-nest reuse)."""
    pb = ProgramBuilder("QUICKSTART")
    a = pb.array("A", (n, n))
    b = pb.array("B", (n, n))
    with pb.subroutine("MAIN"):
        # Producer: fill A column by column (unit stride, column-major).
        with pb.do("J", 1, n) as j:
            with pb.do("I", 1, n) as i:
                pb.assign(a[i, j])
        # Consumer: 5-point stencil over A into B — reuses what nest 1 wrote.
        with pb.do("J", 2, n - 1) as j:
            with pb.do("I", 2, n - 1) as i:
                pb.assign(
                    b[i, j],
                    a[i - 1, j], a[i + 1, j], a[i, j - 1], a[i, j + 1],
                )
    return pb.build()


def main() -> None:
    program = build_program()
    prepared = prepare(program)  # inline -> normalise -> lay out (reusable)

    for assoc in (1, 2):
        cache = CacheConfig.kb(8, 32, assoc)
        exact = analyze(prepared, cache, method="find")  # FindMisses
        sampled = analyze(prepared, cache, method="estimate")  # EstimateMisses
        ground = run_simulation(prepared, cache)  # LRU simulator

        print(f"\n{cache.describe()}")
        print(f"  FindMisses      : {exact.miss_ratio_percent:6.2f}%  "
              f"({exact.total_misses:.0f} misses, {exact.elapsed_seconds:.2f}s)")
        print(f"  EstimateMisses  : {sampled.miss_ratio_percent:6.2f}%  "
              f"({sampled.analysed_points} points sampled, "
              f"{sampled.elapsed_seconds:.2f}s)")
        print(f"  Simulator       : {ground.miss_ratio_percent:6.2f}%  "
              f"({ground.total_misses} misses over "
              f"{ground.total_accesses} accesses)")

        breakdown = exact.breakdown()
        print(f"  Breakdown (Find): cold={breakdown['cold']:.0f} "
              f"replacement={breakdown['replacement']:.0f} "
              f"hits={breakdown['hits']:.0f}")


if __name__ == "__main__":
    main()
