"""Cache-geometry exploration — the memory-designer use case.

The paper's introduction notes that "memory system designers often use
cache simulators to evaluate alternative design options" and offers the
analytical model as a faster instrument.  This example sweeps cache sizes
and associativities for the Hydro kernel analytically and plots (in ASCII)
the capacity curve, cross-checking a few points against the simulator.

Run:  python examples/cache_geometry.py
"""

from repro import CacheConfig, prepare, run_simulation
from repro.kernels import build_hydro
from repro.opt import miss_ratio_curve, sweep_geometries


def bar(pct: float, scale: float = 2.0) -> str:
    return "#" * int(pct / scale)


def main() -> None:
    prepared = prepare(build_hydro(40, 40))

    print("Hydro 40x40 — analytical capacity curve (32B lines, direct)\n")
    sizes = [1, 2, 4, 8, 16, 32]
    points = miss_ratio_curve(prepared, sizes_kb=sizes, method="estimate")
    for p in points:
        print(f"  {p.cache.size_bytes // 1024:>3}KB "
              f"{p.miss_ratio_percent:6.2f}%  {bar(p.miss_ratio_percent)}")

    print("\nAssociativity at 4KB:")
    caches = [CacheConfig.kb(4, 32, a) for a in (1, 2, 4, 8)]
    for p in sweep_geometries(prepared, caches, method="estimate"):
        print(f"  {p.cache.describe():>16} {p.miss_ratio_percent:6.2f}%  "
              f"{bar(p.miss_ratio_percent)}")

    print("\nSpot checks against the simulator:")
    for kb in (2, 8):
        cache = CacheConfig.kb(kb, 32, 1)
        analytic = next(
            p for p in points if p.cache.size_bytes == kb * 1024
        )
        ground = run_simulation(prepared, cache)
        print(f"  {kb}KB direct: analytical {analytic.miss_ratio_percent:5.2f}%, "
              f"simulated {ground.miss_ratio_percent:5.2f}%")


if __name__ == "__main__":
    main()
