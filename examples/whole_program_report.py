"""Whole-program analysis report — the paper's Table 5/6 workflow in one go.

Takes the Swim-class program (multiple subroutines, parameterless calls),
prints its Table 5 statistics and Table 2 call classification, abstractly
inlines everything, predicts the miss ratio per cache configuration and
validates against the simulator — including a per-reference breakdown of
the worst offenders (the information a compiler would use to drive
transformations).

Run:  python examples/whole_program_report.py
"""

from repro import (
    CacheConfig,
    analyze,
    classify_program,
    prepare,
    program_stats,
    run_simulation,
)
from repro.programs import build_swim_like
from repro.report import assoc_label, format_table


def main() -> None:
    program = build_swim_like(n=48, steps=2)

    st = program_stats(program)
    print(format_table(
        ["#lines", "#subroutines", "#calls", "#references"],
        [(st.lines, st.subroutines, st.call_statements, st.references)],
        title=f"{program.name} — program statistics (Table 5 columns)",
    ))

    cs = classify_program(program)
    print()
    print(format_table(
        ["P-able", "R-able", "N-able", "Calls", "A-able"],
        [(cs.p_able, cs.r_able, cs.n_able, cs.calls_total, cs.calls_analysable)],
        title="Call classification (Table 2 columns)",
    ))

    prepared = prepare(program)
    print(f"\nAbstract inlining: {prepared.inline_result.inlined_instances} "
          f"call instances inlined, "
          f"{len(prepared.nprog.refs)} references in one "
          f"{prepared.nprog.depth}-deep normalised nest forest")

    rows = []
    for assoc in (1, 2, 4):
        cache = CacheConfig.kb(4, 32, assoc)
        est = analyze(prepared, cache, method="estimate", seed=0)
        sim = run_simulation(prepared, cache)
        rows.append((
            assoc_label(assoc),
            sim.miss_ratio_percent,
            est.miss_ratio_percent,
            abs(est.miss_ratio_percent - sim.miss_ratio_percent),
            est.elapsed_seconds,
            sim.elapsed_seconds,
        ))
    print()
    print(format_table(
        ["Cache", "Sim %", "E.M %", "Abs.Err", "Exe.T(s)", "Sim.T(s)"],
        rows,
        title="Miss ratios, 4KB/32B (Table 6 columns)",
    ))

    cache = CacheConfig.kb(4, 32, 1)
    report = analyze(prepared, cache, method="estimate", seed=0)
    worst = [
        (r.ref_name, r.population, 100 * r.miss_ratio)
        for r in report.worst_refs(10)
    ]
    print()
    print(format_table(
        ["Reference", "Accesses", "Miss %"],
        worst,
        title="Worst references (optimisation targets)",
    ))


if __name__ == "__main__":
    main()
